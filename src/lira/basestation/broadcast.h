// Messaging cost of disseminating a shedding plan through base stations
// (paper Section 4.3.2 and Table 3).
//
// A square shedding region is encoded as 3 floats plus 1 float for its
// update throttler: 16 bytes per region.

#ifndef LIRA_BASESTATION_BROADCAST_H_
#define LIRA_BASESTATION_BROADCAST_H_

#include <cstdint>
#include <vector>

#include "lira/basestation/base_station.h"
#include "lira/common/geometry.h"
#include "lira/core/shedding_plan.h"

namespace lira {

/// Bytes to encode one (square region, throttler) pair: (3 + 1) * 4.
inline constexpr int32_t kBytesPerRegion = 16;

struct BroadcastCost {
  int32_t num_stations = 0;
  /// Mean number of shedding regions intersecting a station's coverage
  /// disc ("# of Delta_i's per node", Table 3).
  double mean_regions_per_station = 0.0;
  double max_regions_per_station = 0.0;
  /// mean_regions_per_station * kBytesPerRegion.
  double mean_payload_bytes = 0.0;
};

/// Number of plan regions intersecting each station's coverage disc.
std::vector<int32_t> RegionsPerStation(
    const SheddingPlan& plan, const std::vector<BaseStation>& stations);

/// Aggregates RegionsPerStation into the Table 3 metrics.
BroadcastCost ComputeBroadcastCost(const SheddingPlan& plan,
                                   const std::vector<BaseStation>& stations);

/// Mean number of regions known per *node*: each node position is assigned
/// to its covering station and inherits that station's region count. This
/// is the paper's node-weighted variant ("each node ... should know around
/// 41 shedding regions").
double MeanRegionsPerNode(const SheddingPlan& plan,
                          const std::vector<BaseStation>& stations,
                          const std::vector<Point>& node_positions);

}  // namespace lira

#endif  // LIRA_BASESTATION_BROADCAST_H_
