#include "lira/basestation/plan_codec.h"

#include <cmath>
#include <cstring>

namespace lira {
namespace {

constexpr size_t kRecordBytes = 16;  // 4 x f32, paper Section 4.3.2

void AppendFloat(std::vector<uint8_t>* out, float value) {
  uint8_t raw[sizeof(float)];
  std::memcpy(raw, &value, sizeof(float));
  out->insert(out->end(), raw, raw + sizeof(float));
}

float ReadFloat(const uint8_t* data) {
  float value;
  std::memcpy(&value, data, sizeof(float));
  return value;
}

}  // namespace

StatusOr<std::vector<uint8_t>> EncodeRegions(
    const std::vector<BroadcastRegion>& regions) {
  std::vector<uint8_t> out;
  out.reserve(regions.size() * kRecordBytes);
  for (const BroadcastRegion& region : regions) {
    const double w = region.area.width();
    const double h = region.area.height();
    if (w <= 0.0 || h <= 0.0) {
      return InvalidArgumentError("degenerate region");
    }
    if (std::abs(w - h) > 1e-3 * std::max(w, h)) {
      return InvalidArgumentError(
          "wire format encodes square regions only (3 floats + throttler)");
    }
    AppendFloat(&out, static_cast<float>(region.area.min_x));
    AppendFloat(&out, static_cast<float>(region.area.min_y));
    AppendFloat(&out, static_cast<float>(w));
    AppendFloat(&out, static_cast<float>(region.delta));
  }
  return out;
}

StatusOr<std::vector<BroadcastRegion>> DecodeRegions(
    const std::vector<uint8_t>& payload) {
  if (payload.size() % kRecordBytes != 0) {
    return InvalidArgumentError("payload size is not a multiple of 16");
  }
  std::vector<BroadcastRegion> regions;
  regions.reserve(payload.size() / kRecordBytes);
  for (size_t offset = 0; offset < payload.size(); offset += kRecordBytes) {
    const float x = ReadFloat(&payload[offset]);
    const float y = ReadFloat(&payload[offset + 4]);
    const float side = ReadFloat(&payload[offset + 8]);
    const float delta = ReadFloat(&payload[offset + 12]);
    if (!std::isfinite(x) || !std::isfinite(y) || !std::isfinite(side) ||
        !std::isfinite(delta) || side <= 0.0f || delta < 0.0f) {
      return InvalidArgumentError("malformed region record");
    }
    BroadcastRegion region;
    region.area = Rect{x, y, static_cast<double>(x) + side,
                       static_cast<double>(y) + side};
    region.delta = delta;
    regions.push_back(region);
  }
  return regions;
}

std::vector<BroadcastRegion> PlanSubsetFor(const SheddingPlan& plan,
                                           const BaseStation& station) {
  std::vector<BroadcastRegion> subset;
  for (const SheddingRegion& region : plan.regions()) {
    if (DiscIntersectsRect(station.center, station.radius, region.area)) {
      subset.push_back(BroadcastRegion{region.area, region.delta});
    }
  }
  return subset;
}

StatusOr<std::vector<uint8_t>> EncodePlanSubset(const SheddingPlan& plan,
                                                const BaseStation& station) {
  return EncodeRegions(PlanSubsetFor(plan, station));
}

}  // namespace lira
