// Wire format for disseminating shedding regions to mobile nodes.
//
// The paper (Section 4.3.2) encodes a square shedding region as 3 floats
// plus 1 float for its update throttler: 16 bytes per region. A base
// station broadcasts the subset of regions intersecting its coverage area.
// This codec implements exactly that layout:
//
//   [min_x : f32][min_y : f32][side : f32][delta : f32]  x  num_regions

#ifndef LIRA_BASESTATION_PLAN_CODEC_H_
#define LIRA_BASESTATION_PLAN_CODEC_H_

#include <cstdint>
#include <vector>

#include "lira/basestation/base_station.h"
#include "lira/common/geometry.h"
#include "lira/common/status.h"
#include "lira/core/shedding_plan.h"

namespace lira {

/// A region as a mobile node sees it: geometry plus throttler (the server-
/// side statistics are not broadcast).
struct BroadcastRegion {
  Rect area;
  double delta = 0.0;
};

/// Encodes the given regions into the paper's 16-byte-per-region layout.
/// Regions must be square (LIRA's quadrants and even partitions of a square
/// world always are); near-square rectangles within 0.1% tolerance are
/// accepted and encoded by their width.
StatusOr<std::vector<uint8_t>> EncodeRegions(
    const std::vector<BroadcastRegion>& regions);

/// Decodes a broadcast payload. Fails when the size is not a multiple of 16
/// or a record is malformed (non-positive side, non-finite values).
StatusOr<std::vector<BroadcastRegion>> DecodeRegions(
    const std::vector<uint8_t>& payload);

/// The subset of a plan a base station must broadcast: every region whose
/// area intersects the station's coverage disc.
std::vector<BroadcastRegion> PlanSubsetFor(const SheddingPlan& plan,
                                           const BaseStation& station);

/// Convenience: PlanSubsetFor + EncodeRegions.
StatusOr<std::vector<uint8_t>> EncodePlanSubset(const SheddingPlan& plan,
                                                const BaseStation& station);

}  // namespace lira

#endif  // LIRA_BASESTATION_PLAN_CODEC_H_
