#include "lira/basestation/base_station.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "lira/common/check.h"

namespace lira {

StatusOr<std::vector<BaseStation>> UniformPlacement(const Rect& world,
                                                    double radius) {
  if (radius <= 0.0) {
    return InvalidArgumentError("radius must be positive");
  }
  if (world.width() <= 0.0 || world.height() <= 0.0) {
    return InvalidArgumentError("world must be non-degenerate");
  }
  // A disc of radius r covers a square cell of side r * sqrt(2).
  const double spacing = radius * std::numbers::sqrt2;
  const auto nx = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(world.width() / spacing)));
  const auto ny = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(world.height() / spacing)));
  std::vector<BaseStation> stations;
  stations.reserve(static_cast<size_t>(nx) * ny);
  for (int32_t iy = 0; iy < ny; ++iy) {
    for (int32_t ix = 0; ix < nx; ++ix) {
      BaseStation s;
      s.center = {world.min_x + (ix + 0.5) * world.width() / nx,
                  world.min_y + (iy + 0.5) * world.height() / ny};
      s.radius = radius;
      stations.push_back(s);
    }
  }
  return stations;
}

StatusOr<std::vector<BaseStation>> DensityAwarePlacement(
    const StatisticsGrid& stats, const DensityPlacementConfig& config) {
  if (config.target_nodes_per_station <= 0.0 || config.min_radius <= 0.0 ||
      config.max_radius < config.min_radius) {
    return InvalidArgumentError("invalid density placement configuration");
  }
  const int32_t alpha = stats.alpha();
  std::vector<char> covered(static_cast<size_t>(alpha) * alpha, 0);
  std::vector<BaseStation> stations;

  auto cell_center = [&](int32_t ix, int32_t iy) {
    return stats.CellRect(ix, iy).Center();
  };

  // Greedy cover: densest uncovered cell first.
  for (;;) {
    int32_t best_ix = -1;
    int32_t best_iy = -1;
    double best_count = -1.0;
    for (int32_t iy = 0; iy < alpha; ++iy) {
      for (int32_t ix = 0; ix < alpha; ++ix) {
        if (covered[static_cast<size_t>(iy) * alpha + ix]) {
          continue;
        }
        const double count = stats.NodeCount(ix, iy);
        if (count > best_count) {
          best_count = count;
          best_ix = ix;
          best_iy = iy;
        }
      }
    }
    if (best_ix < 0) {
      break;  // everything covered
    }
    const Point center = cell_center(best_ix, best_iy);
    const double cell_area = stats.CellRect(best_ix, best_iy).Area();
    const double density = best_count / cell_area;  // nodes per m^2
    double radius = config.max_radius;
    if (density > 0.0) {
      radius = std::sqrt(config.target_nodes_per_station /
                         (std::numbers::pi * density));
    }
    radius = std::clamp(radius, config.min_radius, config.max_radius);
    stations.push_back({center, radius});
    for (int32_t iy = 0; iy < alpha; ++iy) {
      for (int32_t ix = 0; ix < alpha; ++ix) {
        if (!covered[static_cast<size_t>(iy) * alpha + ix] &&
            Distance(cell_center(ix, iy), center) <= radius) {
          covered[static_cast<size_t>(iy) * alpha + ix] = 1;
        }
      }
    }
  }
  return stations;
}

int32_t StationForPoint(const std::vector<BaseStation>& stations, Point p) {
  LIRA_CHECK(!stations.empty());
  int32_t best = -1;
  double best_dist = 0.0;
  for (int32_t i = 0; i < static_cast<int32_t>(stations.size()); ++i) {
    const double d = Distance(stations[i].center, p);
    if (d <= stations[i].radius && (best < 0 || d < best_dist)) {
      best = i;
      best_dist = d;
    }
  }
  if (best >= 0) {
    return best;
  }
  // No covering disc (shouldn't happen with the provided placements): the
  // nearest station wins.
  best = 0;
  best_dist = Distance(stations[0].center, p);
  for (int32_t i = 1; i < static_cast<int32_t>(stations.size()); ++i) {
    const double d = Distance(stations[i].center, p);
    if (d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  return best;
}

}  // namespace lira
