#include "lira/basestation/base_station.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "lira/common/check.h"

namespace lira {

StatusOr<std::vector<BaseStation>> UniformPlacement(const Rect& world,
                                                    double radius) {
  if (radius <= 0.0) {
    return InvalidArgumentError("radius must be positive");
  }
  if (world.width() <= 0.0 || world.height() <= 0.0) {
    return InvalidArgumentError("world must be non-degenerate");
  }
  // A disc of radius r covers a square cell of side r * sqrt(2).
  const double spacing = radius * std::numbers::sqrt2;
  const auto nx = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(world.width() / spacing)));
  const auto ny = std::max<int32_t>(
      1, static_cast<int32_t>(std::ceil(world.height() / spacing)));
  std::vector<BaseStation> stations;
  stations.reserve(static_cast<size_t>(nx) * ny);
  for (int32_t iy = 0; iy < ny; ++iy) {
    for (int32_t ix = 0; ix < nx; ++ix) {
      BaseStation s;
      s.center = {world.min_x + (ix + 0.5) * world.width() / nx,
                  world.min_y + (iy + 0.5) * world.height() / ny};
      s.radius = radius;
      stations.push_back(s);
    }
  }
  return stations;
}

StatusOr<std::vector<BaseStation>> DensityAwarePlacement(
    const StatisticsGrid& stats, const DensityPlacementConfig& config) {
  if (config.target_nodes_per_station <= 0.0 || config.min_radius <= 0.0 ||
      config.max_radius < config.min_radius) {
    return InvalidArgumentError("invalid density placement configuration");
  }
  const int32_t alpha = stats.alpha();
  std::vector<char> covered(static_cast<size_t>(alpha) * alpha, 0);
  std::vector<BaseStation> stations;

  auto cell_center = [&](int32_t ix, int32_t iy) {
    return stats.CellRect(ix, iy).Center();
  };

  // Greedy cover: densest uncovered cell first.
  for (;;) {
    int32_t best_ix = -1;
    int32_t best_iy = -1;
    double best_count = -1.0;
    for (int32_t iy = 0; iy < alpha; ++iy) {
      for (int32_t ix = 0; ix < alpha; ++ix) {
        if (covered[static_cast<size_t>(iy) * alpha + ix]) {
          continue;
        }
        const double count = stats.NodeCount(ix, iy);
        if (count > best_count) {
          best_count = count;
          best_ix = ix;
          best_iy = iy;
        }
      }
    }
    if (best_ix < 0) {
      break;  // everything covered
    }
    const Point center = cell_center(best_ix, best_iy);
    const double cell_area = stats.CellRect(best_ix, best_iy).Area();
    const double density = best_count / cell_area;  // nodes per m^2
    double radius = config.max_radius;
    if (density > 0.0) {
      radius = std::sqrt(config.target_nodes_per_station /
                         (std::numbers::pi * density));
    }
    radius = std::clamp(radius, config.min_radius, config.max_radius);
    stations.push_back({center, radius});
    for (int32_t iy = 0; iy < alpha; ++iy) {
      for (int32_t ix = 0; ix < alpha; ++ix) {
        if (!covered[static_cast<size_t>(iy) * alpha + ix] &&
            Distance(cell_center(ix, iy), center) <= radius) {
          covered[static_cast<size_t>(iy) * alpha + ix] = 1;
        }
      }
    }
  }
  return stations;
}

int32_t StationForPoint(const std::vector<BaseStation>& stations, Point p) {
  LIRA_CHECK(!stations.empty());
  int32_t best = -1;
  double best_dist = 0.0;
  for (int32_t i = 0; i < static_cast<int32_t>(stations.size()); ++i) {
    const double d = Distance(stations[i].center, p);
    if (d <= stations[i].radius && (best < 0 || d < best_dist)) {
      best = i;
      best_dist = d;
    }
  }
  if (best >= 0) {
    return best;
  }
  // No covering disc (shouldn't happen with the provided placements): the
  // nearest station wins.
  best = 0;
  best_dist = Distance(stations[0].center, p);
  for (int32_t i = 1; i < static_cast<int32_t>(stations.size()); ++i) {
    const double d = Distance(stations[i].center, p);
    if (d < best_dist) {
      best = i;
      best_dist = d;
    }
  }
  return best;
}

StationIndex::StationIndex(std::vector<BaseStation> stations)
    : stations_(std::move(stations)) {
  bounds_ = Rect{stations_[0].center.x - stations_[0].radius,
                 stations_[0].center.y - stations_[0].radius,
                 stations_[0].center.x + stations_[0].radius,
                 stations_[0].center.y + stations_[0].radius};
  for (const BaseStation& s : stations_) {
    bounds_.min_x = std::min(bounds_.min_x, s.center.x - s.radius);
    bounds_.min_y = std::min(bounds_.min_y, s.center.y - s.radius);
    bounds_.max_x = std::max(bounds_.max_x, s.center.x + s.radius);
    bounds_.max_y = std::max(bounds_.max_y, s.center.y + s.radius);
  }
  dim_ = std::clamp<int32_t>(
      static_cast<int32_t>(
          std::ceil(std::sqrt(static_cast<double>(stations_.size())))),
      1, 128);
  cell_w_ = bounds_.width() / dim_;
  cell_h_ = bounds_.height() / dim_;
  buckets_.resize(static_cast<size_t>(dim_) * dim_);
  for (int32_t i = 0; i < static_cast<int32_t>(stations_.size()); ++i) {
    const BaseStation& s = stations_[i];
    const auto lo_x = std::clamp(
        static_cast<int32_t>((s.center.x - s.radius - bounds_.min_x) /
                             cell_w_),
        0, dim_ - 1);
    const auto hi_x = std::clamp(
        static_cast<int32_t>((s.center.x + s.radius - bounds_.min_x) /
                             cell_w_),
        0, dim_ - 1);
    const auto lo_y = std::clamp(
        static_cast<int32_t>((s.center.y - s.radius - bounds_.min_y) /
                             cell_h_),
        0, dim_ - 1);
    const auto hi_y = std::clamp(
        static_cast<int32_t>((s.center.y + s.radius - bounds_.min_y) /
                             cell_h_),
        0, dim_ - 1);
    for (int32_t iy = lo_y; iy <= hi_y; ++iy) {
      for (int32_t ix = lo_x; ix <= hi_x; ++ix) {
        const Rect cell{bounds_.min_x + ix * cell_w_,
                        bounds_.min_y + iy * cell_h_,
                        bounds_.min_x + (ix + 1) * cell_w_,
                        bounds_.min_y + (iy + 1) * cell_h_};
        if (DiscIntersectsRect(s.center, s.radius, cell)) {
          buckets_[static_cast<size_t>(iy) * dim_ + ix].push_back(i);
        }
      }
    }
  }
}

StatusOr<StationIndex> StationIndex::Create(
    std::vector<BaseStation> stations) {
  if (stations.empty()) {
    return InvalidArgumentError("need at least one base station");
  }
  for (const BaseStation& s : stations) {
    if (s.radius <= 0.0) {
      return InvalidArgumentError("station radius must be positive");
    }
  }
  return StationIndex(std::move(stations));
}

int32_t StationIndex::Lookup(Point p) const {
  if (bounds_.Contains(p)) {
    // Any disc covering p intersects p's cell, so its station is in this
    // bucket; scanning the bucket in ascending index order reproduces the
    // reference scan's nearest-then-lowest-index winner exactly.
    const auto ix = std::clamp(
        static_cast<int32_t>((p.x - bounds_.min_x) / cell_w_), 0, dim_ - 1);
    const auto iy = std::clamp(
        static_cast<int32_t>((p.y - bounds_.min_y) / cell_h_), 0, dim_ - 1);
    int32_t best = -1;
    double best_dist = 0.0;
    for (int32_t i : buckets_[static_cast<size_t>(iy) * dim_ + ix]) {
      const double d = Distance(stations_[i].center, p);
      if (d <= stations_[i].radius && (best < 0 || d < best_dist)) {
        best = i;
        best_dist = d;
      }
    }
    if (best >= 0) {
      return best;
    }
  }
  // Outside every disc (or outside the bucketed bounds): the reference
  // scan, whose fallback picks the nearest station.
  return StationForPoint(stations_, p);
}

}  // namespace lira
