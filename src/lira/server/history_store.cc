#include "lira/server/history_store.h"

#include <algorithm>

#include "lira/common/check.h"

namespace lira {

HistoryStore::HistoryStore(int32_t num_nodes) : history_(num_nodes) {
  LIRA_CHECK(num_nodes >= 0);
}

void HistoryStore::Record(const ModelUpdate& update) {
  LIRA_DCHECK(update.node_id >= 0 && update.node_id < num_nodes());
  auto& records = history_[update.node_id];
  const Record_ record{update.model.t0, update.model.origin,
                       update.model.velocity};
  if (records.empty() || records.back().t0 < record.t0) {
    records.push_back(record);
    total_records_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // Out-of-order or duplicate timestamp: keep the list sorted by t0.
  auto it = std::lower_bound(
      records.begin(), records.end(), record.t0,
      [](const Record_& r, double t) { return r.t0 < t; });
  if (it != records.end() && it->t0 == record.t0) {
    *it = record;
  } else {
    records.insert(it, record);
    total_records_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::optional<Point> HistoryStore::PositionAt(NodeId id, double t) const {
  if (id < 0 || id >= num_nodes()) {
    return std::nullopt;
  }
  const auto& records = history_[id];
  // The model in force at t: last record with t0 <= t.
  auto it = std::upper_bound(
      records.begin(), records.end(), t,
      [](double time, const Record_& r) { return time < r.t0; });
  if (it == records.begin()) {
    return std::nullopt;  // no report yet at time t
  }
  --it;
  return it->origin + it->velocity * (t - it->t0);
}

std::optional<double> HistoryStore::LastReportBefore(NodeId id,
                                                     double t) const {
  if (id < 0 || id >= num_nodes()) {
    return std::nullopt;
  }
  const auto& records = history_[id];
  auto it = std::upper_bound(
      records.begin(), records.end(), t,
      [](double time, const Record_& r) { return time < r.t0; });
  if (it == records.begin()) {
    return std::nullopt;
  }
  --it;
  return it->t0;
}

std::vector<NodeId> HistoryStore::RangeAt(const Rect& range, double t) const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const auto position = PositionAt(id, t);
    if (position.has_value() && range.Contains(*position)) {
      out.push_back(id);
    }
  }
  return out;
}

int64_t HistoryStore::RecordsFor(NodeId id) const {
  LIRA_DCHECK(id >= 0 && id < num_nodes());
  return static_cast<int64_t>(history_[id].size());
}

int64_t HistoryStore::ApproxBytes() const {
  return total_records() * static_cast<int64_t>(sizeof(Record_)) +
         static_cast<int64_t>(history_.size()) *
             static_cast<int64_t>(sizeof(std::vector<Record_>));
}

}  // namespace lira
