// Pipeline stage 4: THROTLOOP -> policy -> SheddingPlan.
//
// Owns the throttle-fraction controller, the current z, the active plan,
// and the plan-build accounting + telemetry. A CqServer runs one of these
// per server; a ServerCluster runs exactly one at the coordinator -- the
// throttle window and the statistics grid it optimizes over are *global*
// (summed arrivals, merged grid), so the plan honors the global budget
// z * n * f(delta) and the fairness constraint across shard boundaries.

#ifndef LIRA_SERVER_OPTIMIZER_STAGE_H_
#define LIRA_SERVER_OPTIMIZER_STAGE_H_

#include <cstdint>
#include <string>

#include "lira/common/parallel.h"
#include "lira/common/status.h"
#include "lira/core/policy.h"
#include "lira/core/shedding_plan.h"
#include "lira/core/statistics_grid.h"
#include "lira/core/throt_loop.h"
#include "lira/telemetry/telemetry.h"

namespace lira {

struct OptimizerStageConfig {
  /// Global input-queue capacity B (THROTLOOP's buffer bound).
  int64_t queue_capacity = 500;
  /// Global service rate mu, updates/second.
  double service_rate = 1000.0;
  /// Seconds between adaptations (the THROTLOOP measurement window).
  double adaptation_period = 30.0;
  /// When true, z comes from UpdateThrottle; otherwise fixed_z is used.
  bool auto_throttle = false;
  double fixed_z = 0.5;
  /// Instrument namespace: "<metric_prefix>.{throtloop,plan,queue}.*".
  std::string metric_prefix = "lira";
  /// Optional telemetry (not owned; must outlive the stage).
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Optional worker pool (not owned) handed to the policy via
  /// PolicyContext::pool (quad-tree build + GRIDREDUCE waves). Owners that
  /// construct their pool after the stage use set_pool instead.
  ThreadPool* pool = nullptr;
};

/// Throttle + plan build. Not thread-safe.
class OptimizerStage {
 public:
  /// `initial_delta` seeds a uniform plan over `world` (maximum accuracy
  /// until the first adaptation: the reduction function's delta_min).
  static StatusOr<OptimizerStage> Create(const OptimizerStageConfig& config,
                                         const Rect& world,
                                         double initial_delta);

  /// One THROTLOOP step from the queue window observed over the last
  /// adaptation period (auto_throttle mode). Returns the new z.
  double UpdateThrottle(int64_t window_arrivals, int64_t window_dropped,
                        double now);

  /// Re-asserts the configured fixed z (samples the z gauge). Returns it.
  double FixedThrottle(double now);

  /// Builds and installs a new plan from `stats` at the current z.
  Status BuildPlan(const LoadSheddingPolicy& policy,
                   const StatisticsGrid& stats,
                   const UpdateReductionFunction& reduction, double now);

  double z() const { return z_; }
  const SheddingPlan& plan() const { return plan_; }
  bool auto_throttle() const { return auto_throttle_; }

  /// Late pool injection (the ServerCluster builds its pool after its
  /// stages). Plans are bitwise identical with or without a pool.
  void set_pool(ThreadPool* pool) { pool_ = pool; }

  /// Last measured arrival rate (upd/s) and utilization lambda/mu from
  /// UpdateThrottle; 0 until the first THROTLOOP step. Feeds the flight
  /// recorder's per-tick samples.
  double last_lambda() const { return last_lambda_; }
  double last_utilization() const { return last_utilization_; }

  /// Cumulative time spent building plans (seconds) and number of builds,
  /// for the server-side-cost experiments.
  double total_plan_build_seconds() const { return plan_build_seconds_; }
  int64_t plan_builds() const { return plan_builds_; }

 private:
  OptimizerStage(const OptimizerStageConfig& config, ThrotLoop throt_loop,
                 SheddingPlan plan);

  double adaptation_period_;
  double service_rate_;
  bool auto_throttle_;
  double fixed_z_;
  telemetry::TelemetrySink* telemetry_;
  ThreadPool* pool_;
  ThrotLoop throt_loop_;
  SheddingPlan plan_;
  double z_;
  double last_lambda_ = 0.0;
  double last_utilization_ = 0.0;
  double plan_build_seconds_ = 0.0;
  int64_t plan_builds_ = 0;
  /// Owned storage for instrument names (Emit/SampleGauge take views that
  /// must stay valid only per call, but composing per call would allocate
  /// in the adaptation loop).
  std::string lambda_name_;
  std::string utilization_name_;
  std::string z_name_;
  std::string window_dropped_name_;
  std::string plan_build_name_;
  std::string plan_regions_name_;
  std::string plan_min_delta_name_;
  std::string plan_max_delta_name_;
  std::string plan_rebuilt_name_;
};

}  // namespace lira

#endif  // LIRA_SERVER_OPTIMIZER_STAGE_H_
