// Pipeline stage 3: statistics-grid maintenance.
//
// Owns the StatisticsGrid and everything needed to refresh it from the
// tracker's believed node states at each adaptation: the delta-maintenance
// state (last contribution per node), the sampling RNG, and the query-count
// refresh cache. The rebuild paths keep the original monolithic CqServer's
// bitwise guarantees:
//
//  * incremental (fraction == 1.0): relocate only contributions whose cell
//    or quantized speed changed -- bitwise identical to ClearNodes() + full
//    repopulation (integer accumulators), no RNG consumed;
//  * sampled (fraction < 1.0): ClearNodes() + Bernoulli-sampled
//    repopulation with unbiased 1/fraction weighting. One RNG draw per
//    node id, reported or not, so the stream is a function of (seed,
//    rebuild ordinal) only.
//
// The incremental path comes in two interchangeable flavors sharing the
// same per-node state:
//
//  * scalar: the original per-node loop (PredictAt + BelievedSpeed per id),
//    kept verbatim as the bitwise reference path for A/B benchmarking;
//  * columnar (default): streams id blocks through the PredictPositions
//    kernel, locates cells from the bulk-predicted positions (Rect::Clamp
//    is idempotent, so clamping once in CellIndexOf matches the scalar
//    Clamp-then-locate bit-for-bit), and caches each node's believed
//    velocity so the non-vectorizable std::hypot in BelievedSpeed runs
//    only for nodes whose velocity bits actually changed. With a worker
//    pool the id range splits into contiguous chunks: workers relocate
//    their own nodes into per-worker sparse cell-delta lists which the
//    caller applies in chunk order after the join -- integer deltas from
//    matched remove/add pairs commute, so the grid is bitwise identical
//    to the scalar path for every thread count.
//
// Cluster shards set `owned_only`: the incremental path then iterates just
// the ids ever marked via NoteOwned (scalar path; shard rebuilds already
// run inside the coordinator's shard fan-out, and ParallelFor does not
// nest, so shard stages take no pool). Unmarked ids contribute nothing in
// either mode (no model -> no cell, no RNG in the incremental path), so an
// S=1 shard stays bitwise identical to the all-ids server. The sampled
// path always iterates every id to preserve that per-id RNG stream.
//
// Query counts are delta-maintained: the registry is append-only, so when
// only its size grew (same margin), the stage counts just the appended
// tail via AddQueriesRange -- bitwise identical to the full rescan, which
// remains the fallback for margin changes or explicit invalidation (and
// double-checks the delta path in debug builds).

#ifndef LIRA_SERVER_STATS_STAGE_H_
#define LIRA_SERVER_STATS_STAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lira/common/arena.h"
#include "lira/common/geometry.h"
#include "lira/common/parallel.h"
#include "lira/common/rng.h"
#include "lira/common/status.h"
#include "lira/core/statistics_grid.h"
#include "lira/cq/query_registry.h"
#include "lira/mobility/position.h"
#include "lira/motion/dead_reckoning.h"
#include "lira/telemetry/telemetry.h"

namespace lira {

struct StatsStageConfig {
  int32_t num_nodes = 0;
  Rect world;
  /// Statistics-grid resolution (power of two).
  int32_t alpha = 128;
  /// Fraction of nodes fed into the grid per rebuild; 1.0 = exact.
  double stats_sample_fraction = 1.0;
  /// Delta-maintain across rebuilds when the fraction is 1.0.
  bool incremental_stats = true;
  /// Iterate only NoteOwned ids in the incremental path (cluster shards).
  bool owned_only = false;
  /// Final sampling-RNG seed; the caller pre-mixes (the facade server
  /// passes `seed ^ 0x57a75`, shard k mixes its shard stream in first).
  uint64_t seed = 1234;
  /// Instrument namespace: "<metric_prefix>.stats.cells_dirtied".
  std::string metric_prefix = "lira";
  /// Optional telemetry (not owned; must outlive the stage).
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Optional worker pool (not owned) for the columnar incremental rebuild.
  /// Cluster shard stages must leave this null: their rebuilds run inside
  /// the coordinator's shard fan-out and ParallelFor does not nest.
  ThreadPool* pool = nullptr;
  /// Columnar incremental rebuild (kernel spans + velocity cache); false
  /// pins the original scalar per-node loop -- the bitwise reference path
  /// the adaptation bench A/Bs against.
  bool columnar_rebuild = true;
};

/// Grid + rebuild machinery. Not thread-safe; distinct stages (cluster
/// shards) are independent and may rebuild concurrently.
class StatsStage {
 public:
  static StatusOr<StatsStage> Create(const StatsStageConfig& config);

  /// Refreshes node statistics (n, s) from the tracker's believed state at
  /// time `now`, by delta relocation or sampled repopulation per config.
  void RebuildNodes(const PositionTracker& tracker, double now);

  /// Refreshes query statistics (m) with `margin` meters added around each
  /// query rectangle. Skips the pass entirely when the (registry size,
  /// margin) already counted is current; counts only the appended tail when
  /// the registry merely grew at the same margin (the registry is
  /// append-only, so its size captures content changes); falls back to a
  /// full rescan otherwise. InvalidateQueryCache forces the full rescan.
  void RebuildQueries(const QueryRegistry& queries, double margin);
  void InvalidateQueryCache() { query_stats_valid_ = false; }

  /// Marks a node as owned by this stage (owned_only iteration set).
  void NoteOwned(NodeId id);
  /// Retracts a node's grid contribution and ownership mark (cross-shard
  /// handoff). The incremental path removes the contribution immediately;
  /// the rebuild paths drop it at their next ClearNodes().
  void ForgetNode(NodeId id);

  const StatisticsGrid& grid() const { return grid_; }
  /// The coordinator merges shard grids into its own through this.
  StatisticsGrid* mutable_grid() { return &grid_; }

  /// True when the delta-maintenance fast path owns the node statistics.
  bool IncrementalEnabled() const {
    return incremental_stats_ && stats_sample_fraction_ == 1.0;
  }

 private:
  /// One cell's node-statistics delta, queued by a rebuild worker and
  /// applied by the caller after the join (StatisticsGrid::ApplyNodeDelta).
  struct CellDelta {
    int32_t cell;
    int32_t count;
    int64_t speed_q;
  };

  StatsStage(const StatsStageConfig& config, StatisticsGrid grid);

  void RebuildNodesIncremental(const PositionTracker& tracker, double now);
  /// One node's delta-relocation step; returns cells dirtied (0..2).
  int64_t RelocateNode(const PositionTracker& tracker, NodeId id, double now);

  /// Columnar incremental rebuild (see file comment). `deltas` == nullptr
  /// mutates the grid directly (serial mode); otherwise relocations are
  /// queued for deferred application. Returns cells dirtied.
  int64_t RelocateRange(const PositionTracker& tracker, double now,
                        FrameArena* arena, int64_t begin, int64_t end,
                        std::vector<CellDelta>* deltas);
  void RebuildNodesColumnar(const PositionTracker& tracker, double now);

  /// Applies a relocation delta list to the grid. Large lists are
  /// radix-partitioned by cell first so the read-modify-writes walk the
  /// accumulator arrays slice by slice (each slice cache-resident) instead
  /// of hopping randomly across them; ApplyNodeDelta deltas commute
  /// (integer sums), so any reordering is bitwise identical.
  void ApplyDeltas(const std::vector<CellDelta>& deltas);

  Rect world_;
  double stats_sample_fraction_;
  bool incremental_stats_;
  bool owned_only_;
  bool columnar_rebuild_;
  ThreadPool* pool_;
  StatisticsGrid grid_;
  Rng stats_rng_;
  /// Delta-maintenance state: each node's last contribution to the grid
  /// (flat cell index, -1 = none, and the speed it was added with).
  std::vector<int32_t> stats_cell_of_;
  std::vector<double> stats_speed_of_;
  /// QuantizeSpeed(stats_speed_of_[id]) cached at store time, valid while
  /// stats_cell_of_[id] >= 0 -- the columnar path's removal operand, saving
  /// one llround per relocation (the cached value is the same bits the
  /// on-demand quantization would produce).
  std::vector<int64_t> stats_speed_q_of_;
  /// Believed-velocity cache (columnar path): the velocity bits behind
  /// stats_speed_of_. Consulted only while the node contributes
  /// (stats_cell_of_ >= 0); equal bits let the rebuild reuse the stored
  /// speed instead of recomputing std::hypot.
  std::vector<double> stats_vel_x_;
  std::vector<double> stats_vel_y_;
  /// Owned-id bitmap (64 ids per word), iterated in ascending id order.
  std::vector<uint64_t> owned_words_;
  /// Columnar-rebuild scratch: one arena (and, under a pool, one delta
  /// list) per worker; arenas hold the per-block prediction spans.
  std::vector<FrameArena> rebuild_arenas_;
  std::vector<std::vector<CellDelta>> rebuild_deltas_;
  std::vector<int64_t> rebuild_dirtied_;
  /// ApplyDeltas radix scratch (reused across rebuilds).
  std::vector<CellDelta> delta_sort_scratch_;
  std::vector<int32_t> delta_bucket_offsets_;
  /// Query-count refresh skip state.
  bool query_stats_valid_ = false;
  int32_t query_stats_size_ = -1;
  double query_stats_margin_ = -1.0;
  telemetry::Counter* cells_dirtied_counter_ = nullptr;
};

}  // namespace lira

#endif  // LIRA_SERVER_STATS_STAGE_H_
