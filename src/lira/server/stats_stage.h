// Pipeline stage 3: statistics-grid maintenance.
//
// Owns the StatisticsGrid and everything needed to refresh it from the
// tracker's believed node states at each adaptation: the delta-maintenance
// state (last contribution per node), the sampling RNG, and the query-count
// refresh cache. The rebuild paths are transplanted verbatim from the
// original monolithic CqServer and keep its bitwise guarantees:
//
//  * incremental (fraction == 1.0): relocate only contributions whose cell
//    or quantized speed changed -- bitwise identical to ClearNodes() + full
//    repopulation (integer accumulators), no RNG consumed;
//  * sampled (fraction < 1.0): ClearNodes() + Bernoulli-sampled
//    repopulation with unbiased 1/fraction weighting. One RNG draw per
//    node id, reported or not, so the stream is a function of (seed,
//    rebuild ordinal) only.
//
// Cluster shards set `owned_only`: the incremental path then iterates just
// the ids ever marked via NoteOwned. Unmarked ids contribute nothing in
// either mode (no model -> no cell, no RNG in the incremental path), so an
// S=1 shard stays bitwise identical to the all-ids server. The sampled
// path always iterates every id to preserve that per-id RNG stream.

#ifndef LIRA_SERVER_STATS_STAGE_H_
#define LIRA_SERVER_STATS_STAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/rng.h"
#include "lira/common/status.h"
#include "lira/core/statistics_grid.h"
#include "lira/cq/query_registry.h"
#include "lira/mobility/position.h"
#include "lira/motion/dead_reckoning.h"
#include "lira/telemetry/telemetry.h"

namespace lira {

struct StatsStageConfig {
  int32_t num_nodes = 0;
  Rect world;
  /// Statistics-grid resolution (power of two).
  int32_t alpha = 128;
  /// Fraction of nodes fed into the grid per rebuild; 1.0 = exact.
  double stats_sample_fraction = 1.0;
  /// Delta-maintain across rebuilds when the fraction is 1.0.
  bool incremental_stats = true;
  /// Iterate only NoteOwned ids in the incremental path (cluster shards).
  bool owned_only = false;
  /// Final sampling-RNG seed; the caller pre-mixes (the facade server
  /// passes `seed ^ 0x57a75`, shard k mixes its shard stream in first).
  uint64_t seed = 1234;
  /// Instrument namespace: "<metric_prefix>.stats.cells_dirtied".
  std::string metric_prefix = "lira";
  /// Optional telemetry (not owned; must outlive the stage).
  telemetry::TelemetrySink* telemetry = nullptr;
};

/// Grid + rebuild machinery. Not thread-safe; distinct stages (cluster
/// shards) are independent and may rebuild concurrently.
class StatsStage {
 public:
  static StatusOr<StatsStage> Create(const StatsStageConfig& config);

  /// Refreshes node statistics (n, s) from the tracker's believed state at
  /// time `now`, by delta relocation or sampled repopulation per config.
  void RebuildNodes(const PositionTracker& tracker, double now);

  /// Refreshes query statistics (m) with `margin` meters added around each
  /// query rectangle, skipping the pass when the (registry size, margin)
  /// already counted is current. The registry is append-only, so its size
  /// captures content changes; InvalidateQueryCache forces a recount.
  void RebuildQueries(const QueryRegistry& queries, double margin);
  void InvalidateQueryCache() { query_stats_valid_ = false; }

  /// Marks a node as owned by this stage (owned_only iteration set).
  void NoteOwned(NodeId id);
  /// Retracts a node's grid contribution and ownership mark (cross-shard
  /// handoff). The incremental path removes the contribution immediately;
  /// the rebuild paths drop it at their next ClearNodes().
  void ForgetNode(NodeId id);

  const StatisticsGrid& grid() const { return grid_; }
  /// The coordinator merges shard grids into its own through this.
  StatisticsGrid* mutable_grid() { return &grid_; }

  /// True when the delta-maintenance fast path owns the node statistics.
  bool IncrementalEnabled() const {
    return incremental_stats_ && stats_sample_fraction_ == 1.0;
  }

 private:
  StatsStage(const StatsStageConfig& config, StatisticsGrid grid);

  void RebuildNodesIncremental(const PositionTracker& tracker, double now);
  /// One node's delta-relocation step; returns cells dirtied (0..2).
  int64_t RelocateNode(const PositionTracker& tracker, NodeId id, double now);

  Rect world_;
  double stats_sample_fraction_;
  bool incremental_stats_;
  bool owned_only_;
  StatisticsGrid grid_;
  Rng stats_rng_;
  /// Delta-maintenance state: each node's last contribution to the grid
  /// (flat cell index, -1 = none, and the speed it was added with).
  std::vector<int32_t> stats_cell_of_;
  std::vector<double> stats_speed_of_;
  /// Owned-id bitmap (64 ids per word), iterated in ascending id order.
  std::vector<uint64_t> owned_words_;
  /// Query-count refresh skip state.
  bool query_stats_valid_ = false;
  int32_t query_stats_size_ = -1;
  double query_stats_margin_ = -1.0;
  telemetry::Counter* cells_dirtied_counter_ = nullptr;
};

}  // namespace lira

#endif  // LIRA_SERVER_STATS_STAGE_H_
