#include "lira/server/cq_server.h"

#include <utility>

namespace lira {

CqServer::CqServer(const CqServerConfig& config,
                   const LoadSheddingPolicy* policy,
                   const UpdateReductionFunction* reduction,
                   const QueryRegistry* queries, IngestStage ingest,
                   TrackerStage tracker_stage, StatsStage stats_stage,
                   OptimizerStage optimizer)
    : config_(config),
      policy_(policy),
      reduction_(reduction),
      queries_(queries),
      ingest_(std::move(ingest)),
      tracker_stage_(std::move(tracker_stage)),
      stats_stage_(std::move(stats_stage)),
      optimizer_(std::move(optimizer)),
      next_adaptation_(config.adaptation_period) {}

double CqServer::QueryMargin() const {
  return config_.query_margin >= 0.0 ? config_.query_margin
                                     : reduction_->delta_max();
}

StatusOr<CqServer> CqServer::Create(const CqServerConfig& config,
                                    const LoadSheddingPolicy* policy,
                                    const UpdateReductionFunction* reduction,
                                    const QueryRegistry* queries) {
  if (policy == nullptr || reduction == nullptr || queries == nullptr) {
    return InvalidArgumentError("policy/reduction/queries must be non-null");
  }
  if (config.num_nodes <= 0) {
    return InvalidArgumentError("num_nodes must be positive");
  }
  if (config.service_rate <= 0.0) {
    return InvalidArgumentError("service_rate must be positive");
  }
  if (config.adaptation_period <= 0.0) {
    return InvalidArgumentError("adaptation_period must be positive");
  }
  if (!config.auto_throttle && (config.fixed_z < 0.0 || config.fixed_z > 1.0)) {
    return InvalidArgumentError("fixed_z must be in [0, 1]");
  }
  if (config.stats_sample_fraction <= 0.0 ||
      config.stats_sample_fraction > 1.0) {
    return InvalidArgumentError("stats_sample_fraction must be in (0, 1]");
  }

  StatsStageConfig stats_config;
  stats_config.num_nodes = config.num_nodes;
  stats_config.world = config.world;
  stats_config.alpha = config.alpha;
  stats_config.stats_sample_fraction = config.stats_sample_fraction;
  stats_config.incremental_stats = config.incremental_stats;
  stats_config.columnar_rebuild = config.columnar_rebuild;
  stats_config.seed = config.seed ^ 0x57a75ULL;
  stats_config.telemetry = config.telemetry;
  stats_config.pool = config.pool;
  auto stats_stage = StatsStage::Create(stats_config);
  if (!stats_stage.ok()) {
    return stats_stage.status();
  }
  const double margin = config.query_margin >= 0.0
                            ? config.query_margin
                            : reduction->delta_max();
  stats_stage->RebuildQueries(*queries, margin);

  IngestStageConfig ingest_config;
  ingest_config.queue_capacity = config.queue_capacity;
  ingest_config.service_rate = config.service_rate;
  ingest_config.seed = config.seed;
  ingest_config.telemetry = config.telemetry;
  auto ingest = IngestStage::Create(ingest_config);
  if (!ingest.ok()) {
    return ingest.status();
  }

  OptimizerStageConfig optimizer_config;
  optimizer_config.queue_capacity =
      static_cast<int64_t>(config.queue_capacity);
  optimizer_config.service_rate = config.service_rate;
  optimizer_config.adaptation_period = config.adaptation_period;
  optimizer_config.auto_throttle = config.auto_throttle;
  optimizer_config.fixed_z = config.fixed_z;
  optimizer_config.telemetry = config.telemetry;
  optimizer_config.pool = config.pool;
  auto optimizer = OptimizerStage::Create(optimizer_config, config.world,
                                          reduction->delta_min());
  if (!optimizer.ok()) {
    return optimizer.status();
  }

  auto tracker_stage = TrackerStage::Create(
      config.num_nodes, config.maintain_index, config.record_history);
  if (!tracker_stage.ok()) {
    return tracker_stage.status();
  }

  return CqServer(config, policy, reduction, queries, *std::move(ingest),
                  *std::move(tracker_stage), *std::move(stats_stage),
                  *std::move(optimizer));
}

void CqServer::ReceiveBatch(std::vector<ModelUpdate>* updates) {
  telemetry::TraceRecorder* tr = config_.trace;
  telemetry::ScopedSpan span(
      tr, tr != nullptr ? tr->lane(telemetry::TraceRecorder::kDriverLane)
                        : nullptr,
      "ingest.receive", tick_, -1, time_);
  span.set_value(static_cast<double>(updates->size()));
  ingest_.Receive(updates, time_);
}

Status CqServer::Tick(double dt) {
  if (dt <= 0.0) {
    return InvalidArgumentError("dt must be positive");
  }
  time_ += dt;
  ++tick_;
  telemetry::TraceRecorder* tr = config_.trace;
  telemetry::TraceLane* lane =
      tr != nullptr ? tr->lane(telemetry::TraceRecorder::kDriverLane)
                    : nullptr;
  {
    telemetry::ScopedSpan service_span(tr, lane, "ingest.service", tick_, -1,
                                       time_);
    const std::vector<ModelUpdate> served = ingest_.Service(dt);
    service_span.set_value(static_cast<double>(served.size()));
    service_span.Stop();
    telemetry::ScopedSpan apply_span(tr, lane, "tracker.apply", tick_, -1,
                                     time_);
    apply_span.set_value(static_cast<double>(served.size()));
    for (const ModelUpdate& update : served) {
      tracker_stage_.Apply(update);
    }
  }
  if (time_ + 1e-9 >= next_adaptation_) {
    LIRA_RETURN_IF_ERROR(Adapt());
    next_adaptation_ += config_.adaptation_period;
  }
  if (config_.flight_recorder != nullptr) {
    RecordFlightSample();
  }
  return OkStatus();
}

void CqServer::RecordFlightSample() {
  telemetry::FlightSample sample;
  sample.tick = tick_;
  sample.time = time_;
  sample.shard = -1;
  sample.queue_depth = static_cast<int64_t>(ingest_.queue().size());
  sample.queue_dropped = ingest_.queue().total_dropped();
  sample.queue_arrivals = ingest_.queue().total_arrivals();
  sample.z = optimizer_.z();
  sample.lambda = optimizer_.last_lambda();
  sample.utilization = optimizer_.last_utilization();
  sample.nodes = static_cast<int64_t>(stats_stage_.grid().TotalNodes());
  sample.plan_regions = static_cast<int32_t>(optimizer_.plan().NumRegions());
  sample.plan_min_delta = optimizer_.plan().MinDelta();
  sample.plan_max_delta = optimizer_.plan().MaxDelta();
  config_.flight_recorder->Record(sample);
}

Status CqServer::InstallQueries(const QueryRegistry* queries) {
  if (queries == nullptr) {
    return InvalidArgumentError("queries must be non-null");
  }
  queries_ = queries;
  stats_stage_.InvalidateQueryCache();
  return OkStatus();
}

StatusOr<std::vector<NodeId>> CqServer::AnswerQuery(QueryId query) const {
  if (query < 0 || query >= queries_->size()) {
    return InvalidArgumentError("unknown query id");
  }
  return AnswerRange(queries_->Get(query).range, time_);
}

StatusOr<std::vector<NodeId>> CqServer::AnswerRange(const Rect& range,
                                                    double t) const {
  if (!config_.maintain_index) {
    return FailedPreconditionError("server index maintenance is disabled");
  }
  if (t + 1e-9 < time_) {
    return InvalidArgumentError(
        "snapshot time is in the past; use the history store for "
        "historical queries");
  }
  return tracker_stage_.RangeAt(range, t);
}

StatusOr<std::vector<NodeId>> CqServer::AnswerHistoricalRange(
    const Rect& range, double t) const {
  if (history() == nullptr) {
    return FailedPreconditionError("history recording is disabled");
  }
  if (t > time_ + 1e-9) {
    return InvalidArgumentError("historical time is in the future");
  }
  return history()->RangeAt(range, t);
}

std::vector<NodeId> CqServer::HistoricalRangeAt(const Rect& range,
                                                double t) const {
  const HistoryStore* store = history();
  return store != nullptr ? store->RangeAt(range, t) : std::vector<NodeId>{};
}

std::optional<Point> CqServer::HistoricalPositionAt(NodeId id,
                                                    double t) const {
  const HistoryStore* store = history();
  return store != nullptr ? store->PositionAt(id, t) : std::nullopt;
}

int64_t CqServer::history_bytes() const {
  const HistoryStore* store = history();
  return store != nullptr ? store->ApproxBytes() : 0;
}

Status CqServer::Adapt() {
  telemetry::TelemetrySink* t = config_.telemetry;
  telemetry::ScopedTimer adapt_timer(t, "lira.adapt.total_seconds", time_);
  telemetry::TraceRecorder* tr = config_.trace;
  telemetry::TraceLane* lane =
      tr != nullptr ? tr->lane(telemetry::TraceRecorder::kDriverLane)
                    : nullptr;
  {
    telemetry::ScopedSpan throttle_span(tr, lane, "optimizer.throttle", tick_,
                                        -1, time_);
    if (config_.auto_throttle) {
      optimizer_.UpdateThrottle(ingest_.queue().window_arrivals(),
                                ingest_.queue().window_dropped(), time_);
      ingest_.ResetWindow();
    } else {
      optimizer_.FixedThrottle(time_);
    }
    throttle_span.set_value(optimizer_.z());
  }
  {
    telemetry::ScopedTimer stats_timer(t, "lira.adapt.stats_rebuild_seconds",
                                       time_);
    telemetry::ScopedSpan stats_span(tr, lane, "stats.rebuild", tick_, -1,
                                     time_);
    stats_stage_.RebuildNodes(tracker_stage_.tracker(), time_);
    {
      telemetry::ScopedTimer query_timer(t, "lira.adapt.query_rebuild_seconds",
                                         time_);
      telemetry::ScopedSpan query_span(tr, lane, "stats.query_rebuild", tick_,
                                       -1, time_);
      stats_stage_.RebuildQueries(*queries_, QueryMargin());
    }
    stats_span.set_value(stats_stage_.grid().TotalNodes());
  }
  Status built;
  {
    telemetry::ScopedSpan plan_span(tr, lane, "optimizer.plan_build", tick_,
                                    -1, time_);
    built = optimizer_.BuildPlan(*policy_, stats_stage_.grid(), *reduction_,
                                 time_);
    plan_span.set_value(static_cast<double>(optimizer_.plan().NumRegions()));
  }
  // The plan is now visible to the encoders (the simulator reads it at the
  // top of the next frame) -- mark the broadcast point.
  telemetry::RecordInstant(tr, lane, "plan.broadcast", tick_, -1, time_,
                           static_cast<double>(optimizer_.plan().NumRegions()));
  return built;
}

}  // namespace lira
