#include "lira/server/cq_server.h"

#include <chrono>
#include <cmath>
#include <utility>

namespace lira {

CqServer::CqServer(const CqServerConfig& config,
                   const LoadSheddingPolicy* policy,
                   const UpdateReductionFunction* reduction,
                   const QueryRegistry* queries, StatisticsGrid stats,
                   UpdateQueue queue, ThrotLoop throt_loop, SheddingPlan plan,
                   TprTree index)
    : config_(config),
      policy_(policy),
      reduction_(reduction),
      queries_(queries),
      stats_(std::move(stats)),
      queue_(std::move(queue)),
      throt_loop_(std::move(throt_loop)),
      tracker_(config.num_nodes),
      index_(std::move(index)),
      history_(config.record_history
                   ? std::optional<HistoryStore>(
                         HistoryStore(config.num_nodes))
                   : std::nullopt),
      plan_(std::move(plan)),
      z_(config.auto_throttle ? 1.0 : config.fixed_z),
      next_adaptation_(config.adaptation_period),
      stats_rng_(config.seed ^ 0x57a75ULL),
      stats_cell_of_(config.num_nodes, -1),
      stats_speed_of_(config.num_nodes, 0.0) {
  if (config_.telemetry != nullptr) {
    telemetry::MetricRegistry& metrics = config_.telemetry->metrics();
    queue_instruments_.arrivals = metrics.GetCounter("lira.queue.arrivals");
    queue_instruments_.dropped = metrics.GetCounter("lira.queue.dropped");
    queue_instruments_.depth = metrics.GetGauge("lira.queue.depth");
    queue_instruments_.high_watermark =
        metrics.GetGauge("lira.queue.high_watermark");
    cells_dirtied_counter_ = metrics.GetCounter("lira.stats.cells_dirtied");
  }
  // Create() already counted the registry into the grid with this margin.
  query_stats_valid_ = true;
  query_stats_size_ = queries_->size();
  query_stats_margin_ = config_.query_margin >= 0.0 ? config_.query_margin
                                                    : reduction_->delta_max();
}

StatusOr<CqServer> CqServer::Create(const CqServerConfig& config,
                                    const LoadSheddingPolicy* policy,
                                    const UpdateReductionFunction* reduction,
                                    const QueryRegistry* queries) {
  if (policy == nullptr || reduction == nullptr || queries == nullptr) {
    return InvalidArgumentError("policy/reduction/queries must be non-null");
  }
  if (config.num_nodes <= 0) {
    return InvalidArgumentError("num_nodes must be positive");
  }
  if (config.service_rate <= 0.0) {
    return InvalidArgumentError("service_rate must be positive");
  }
  if (config.adaptation_period <= 0.0) {
    return InvalidArgumentError("adaptation_period must be positive");
  }
  if (!config.auto_throttle && (config.fixed_z < 0.0 || config.fixed_z > 1.0)) {
    return InvalidArgumentError("fixed_z must be in [0, 1]");
  }
  if (config.stats_sample_fraction <= 0.0 ||
      config.stats_sample_fraction > 1.0) {
    return InvalidArgumentError("stats_sample_fraction must be in (0, 1]");
  }
  auto stats = StatisticsGrid::Create(config.world, config.alpha);
  if (!stats.ok()) {
    return stats.status();
  }
  const double margin = config.query_margin >= 0.0
                            ? config.query_margin
                            : reduction->delta_max();
  stats->AddQueries(*queries, margin);
  auto queue = UpdateQueue::Create(config.queue_capacity, config.seed);
  if (!queue.ok()) {
    return queue.status();
  }
  ThrotLoopConfig throttle_config;
  throttle_config.queue_capacity =
      static_cast<int64_t>(config.queue_capacity);
  auto throt_loop = ThrotLoop::Create(throttle_config);
  if (!throt_loop.ok()) {
    return throt_loop.status();
  }
  auto index = TprTree::Create();
  if (!index.ok()) {
    return index.status();
  }
  // Until the first adaptation every node runs at maximum accuracy.
  SheddingPlan initial_plan =
      SheddingPlan::MakeUniform(config.world, reduction->delta_min());
  return CqServer(config, policy, reduction, queries, *std::move(stats),
                  *std::move(queue), *std::move(throt_loop),
                  std::move(initial_plan), *std::move(index));
}

void CqServer::Receive(std::vector<ModelUpdate> updates) {
  ReceiveBatch(&updates);
}

void CqServer::ReceiveBatch(std::vector<ModelUpdate>* updates) {
  const auto arrived = static_cast<int64_t>(updates->size());
  const int64_t dropped = queue_.OfferAll(updates);
  if (config_.telemetry != nullptr) {
    UpdateQueueTelemetry(arrived, dropped);
  }
}

void CqServer::UpdateQueueTelemetry(int64_t arrived, int64_t dropped) {
  queue_instruments_.arrivals->Increment(arrived);
  queue_instruments_.depth->Set(static_cast<double>(queue_.size()));
  queue_instruments_.high_watermark->Set(
      static_cast<double>(queue_.high_watermark()));
  if (dropped > 0) {
    queue_instruments_.dropped->Increment(dropped);
    config_.telemetry->Emit(telemetry::EventKind::kQueueOverflow,
                            "lira.queue.dropped", time_,
                            static_cast<double>(dropped),
                            static_cast<double>(queue_.size()));
  }
}

Status CqServer::Tick(double dt) {
  if (dt <= 0.0) {
    return InvalidArgumentError("dt must be positive");
  }
  time_ += dt;
  service_credit_ += config_.service_rate * dt;
  const auto serve = static_cast<int64_t>(std::floor(service_credit_));
  service_credit_ -= static_cast<double>(serve);
  for (const ModelUpdate& update : queue_.Drain(serve)) {
    tracker_.Apply(update);
    if (config_.maintain_index) {
      index_.Update(update.node_id, update.model);
    }
    if (history_.has_value()) {
      history_->Record(update);
    }
  }
  if (time_ + 1e-9 >= next_adaptation_) {
    LIRA_RETURN_IF_ERROR(Adapt());
    next_adaptation_ += config_.adaptation_period;
  }
  return OkStatus();
}

void CqServer::RebuildNodeStatistics() {
  if (IncrementalStatsEnabled()) {
    // Delta maintenance: relocate only the contributions whose cell or
    // quantized speed changed since the last adaptation. The grid's integer
    // accumulators make the result bitwise identical to ClearNodes() + full
    // repopulation, and at fraction 1.0 neither path draws from stats_rng_,
    // so the two paths are interchangeable mid-run.
    int64_t dirtied = 0;
    for (NodeId id = 0; id < tracker_.num_nodes(); ++id) {
      const auto position = tracker_.PredictAt(id, time_);
      int32_t new_cell = -1;
      double new_speed = 0.0;
      if (position.has_value()) {
        const Point where = config_.world.Clamp(*position);
        new_cell = stats_.CellIndexOf(where);
        new_speed = tracker_.BelievedSpeed(id);
      }
      const int32_t old_cell = stats_cell_of_[id];
      if (old_cell == new_cell &&
          (new_cell < 0 ||
           StatisticsGrid::QuantizeSpeed(stats_speed_of_[id]) ==
               StatisticsGrid::QuantizeSpeed(new_speed))) {
        continue;
      }
      if (old_cell >= 0) {
        stats_.RemoveNodeAt(old_cell, stats_speed_of_[id]);
        ++dirtied;
      }
      if (new_cell >= 0) {
        stats_.AddNodeAt(new_cell, new_speed);
        if (new_cell != old_cell) {
          ++dirtied;
        }
      }
      stats_cell_of_[id] = new_cell;
      stats_speed_of_[id] = new_speed;
    }
    if (cells_dirtied_counter_ != nullptr) {
      cells_dirtied_counter_->Increment(dirtied);
    }
    return;
  }
  stats_.ClearNodes();
  const double fraction = config_.stats_sample_fraction;
  const double weight = 1.0 / fraction;
  for (NodeId id = 0; id < tracker_.num_nodes(); ++id) {
    if (fraction < 1.0 && !stats_rng_.Bernoulli(fraction)) {
      continue;
    }
    const auto position = tracker_.PredictAt(id, time_);
    if (!position.has_value()) {
      continue;
    }
    const Point where = config_.world.Clamp(*position);
    const double speed = tracker_.BelievedSpeed(id);
    // Unbiased scaling: each sampled node stands for 1/fraction nodes.
    for (double mass = weight; mass > 1e-9; mass -= 1.0) {
      // AddNode has unit mass; add floor(weight) copies plus a Bernoulli
      // remainder so expectations match exactly.
      if (mass >= 1.0 || stats_rng_.Bernoulli(mass)) {
        stats_.AddNode(where, speed);
      }
    }
  }
}

void CqServer::RebuildQueryStatistics() {
  const double margin = config_.query_margin >= 0.0
                            ? config_.query_margin
                            : reduction_->delta_max();
  if (query_stats_valid_ && query_stats_size_ == queries_->size() &&
      query_stats_margin_ == margin) {
    return;  // counts already in the grid are current
  }
  stats_.ClearQueries();
  stats_.AddQueries(*queries_, margin);
  query_stats_valid_ = true;
  query_stats_size_ = queries_->size();
  query_stats_margin_ = margin;
}

Status CqServer::InstallQueries(const QueryRegistry* queries) {
  if (queries == nullptr) {
    return InvalidArgumentError("queries must be non-null");
  }
  queries_ = queries;
  query_stats_valid_ = false;
  return OkStatus();
}

StatusOr<std::vector<NodeId>> CqServer::AnswerQuery(QueryId query) const {
  if (query < 0 || query >= queries_->size()) {
    return InvalidArgumentError("unknown query id");
  }
  return AnswerRange(queries_->Get(query).range, time_);
}

StatusOr<std::vector<NodeId>> CqServer::AnswerRange(const Rect& range,
                                                    double t) const {
  if (!config_.maintain_index) {
    return FailedPreconditionError("server index maintenance is disabled");
  }
  if (t + 1e-9 < time_) {
    return InvalidArgumentError(
        "snapshot time is in the past; use the history store for "
        "historical queries");
  }
  return index_.QueryAt(range, t);
}

StatusOr<std::vector<NodeId>> CqServer::AnswerHistoricalRange(
    const Rect& range, double t) const {
  if (!history_.has_value()) {
    return FailedPreconditionError("history recording is disabled");
  }
  if (t > time_ + 1e-9) {
    return InvalidArgumentError("historical time is in the future");
  }
  return history_->RangeAt(range, t);
}

Status CqServer::Adapt() {
  telemetry::TelemetrySink* t = config_.telemetry;
  telemetry::ScopedTimer adapt_timer(t, "lira.adapt.total_seconds", time_);
  if (config_.auto_throttle) {
    const double lambda = static_cast<double>(queue_.window_arrivals()) /
                          config_.adaptation_period;
    const double previous_z = z_;
    z_ = throt_loop_.Update(lambda, config_.service_rate);
    if (t != nullptr) {
      t->SampleGauge("lira.throtloop.lambda", time_, lambda);
      t->SampleGauge("lira.throtloop.utilization", time_,
                     lambda / config_.service_rate);
      t->SampleGauge("lira.throtloop.z", time_, z_);
      t->SampleGauge("lira.queue.window_dropped", time_,
                     static_cast<double>(queue_.window_dropped()));
      if (z_ != previous_z) {
        t->Emit(telemetry::EventKind::kZChanged, "lira.throtloop.z", time_,
                z_, lambda);
      }
    }
    queue_.ResetWindow();
  } else {
    z_ = config_.fixed_z;
    if (t != nullptr) {
      t->SampleGauge("lira.throtloop.z", time_, z_);
    }
  }
  {
    telemetry::ScopedTimer stats_timer(t, "lira.adapt.stats_rebuild_seconds",
                                       time_);
    RebuildNodeStatistics();
    RebuildQueryStatistics();
  }
  PolicyContext ctx;
  ctx.stats = &stats_;
  ctx.reduction = reduction_;
  ctx.z = z_;
  ctx.telemetry = t;
  ctx.now = time_;
  const auto start = std::chrono::steady_clock::now();
  auto plan = policy_->BuildPlan(ctx);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (!plan.ok()) {
    return plan.status();
  }
  plan_ = *std::move(plan);
  const double build_seconds = std::chrono::duration<double>(elapsed).count();
  plan_build_seconds_ += build_seconds;
  ++plan_builds_;
  if (t != nullptr) {
    t->RecordSpan("lira.adapt.plan_build_seconds", time_, build_seconds);
    t->SampleGauge("lira.plan.regions", time_,
                   static_cast<double>(plan_.NumRegions()));
    t->SampleGauge("lira.plan.min_delta", time_, plan_.MinDelta());
    t->SampleGauge("lira.plan.max_delta", time_, plan_.MaxDelta());
    t->Emit(telemetry::EventKind::kPlanRebuilt, "lira.plan.rebuilt", time_,
            static_cast<double>(plan_.NumRegions()), build_seconds);
  }
  return OkStatus();
}

}  // namespace lira
