// The narrow driving interface of a CQ-serving pipeline.
//
// Both the single-process CqServer and the region-sharded ServerCluster
// implement this: the simulator's frame loop (and any other driver) feeds
// batches in, ticks the clock, and reads the plan/accounting back without
// knowing whether one pipeline or S shards sit behind the calls. The
// contract every implementation honors is the repo's determinism rule:
// given the same seed and the same input batches, the observable state
// (plan, z, drop counts, believed positions) is bitwise identical for any
// worker thread count.

#ifndef LIRA_SERVER_SERVER_PIPELINE_H_
#define LIRA_SERVER_SERVER_PIPELINE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"
#include "lira/core/shedding_plan.h"
#include "lira/cq/query_registry.h"
#include "lira/mobility/position.h"
#include "lira/motion/linear_model.h"

namespace lira {

class ServerPipeline {
 public:
  virtual ~ServerPipeline() = default;

  /// Points the pipeline at a (possibly different) query registry; takes
  /// effect at the next adaptation. The registry must outlive the pipeline.
  virtual Status InstallQueries(const QueryRegistry* queries) = 0;

  /// Admits one tick's batch of position updates, consuming `*updates` in
  /// place (shuffled, elements moved from) so the caller can clear and
  /// reuse the buffer's capacity across ticks.
  virtual void ReceiveBatch(std::vector<ModelUpdate>* updates) = 0;

  /// As ReceiveBatch with an owned batch.
  void Receive(std::vector<ModelUpdate> updates) { ReceiveBatch(&updates); }

  /// Advances the clock by dt seconds: services the queue(s) and runs the
  /// adaptation step when the period elapses.
  virtual Status Tick(double dt) = 0;

  /// Forces an adaptation step immediately.
  virtual Status Adapt() = 0;

  virtual double time() const = 0;
  /// Throttle fraction currently in force.
  virtual double z() const = 0;
  /// The active (global) shedding plan.
  virtual const SheddingPlan& plan() const = 0;

  /// The pipeline's believed position of a node at time t; nullopt when the
  /// node has not reported (or its update was shed).
  virtual std::optional<Point> BelievedPositionAt(NodeId id,
                                                  double t) const = 0;

  /// Bulk BelievedPositionAt over the id range [begin, begin + n): writes
  /// the believed position columns and the known mask (lane i is node
  /// begin + i; out slots of unknown lanes are unspecified). This default
  /// loops over BelievedPositionAt; pipelines with columnar trackers
  /// override it with the PredictPositions kernel (CqServer). Either path
  /// yields bitwise-identical columns.
  virtual void FillBelievedInto(NodeId begin, int64_t n, double t,
                                double* out_x, double* out_y,
                                uint8_t* known) const {
    for (int64_t i = 0; i < n; ++i) {
      const auto believed =
          BelievedPositionAt(begin + static_cast<NodeId>(i), t);
      known[i] = believed.has_value() ? 1 : 0;
      if (believed.has_value()) {
        out_x[i] = believed->x;
        out_y[i] = believed->y;
      }
    }
  }

  /// Queue accounting, aggregated over all shards.
  virtual size_t queue_size() const = 0;
  virtual int64_t queue_arrivals() const = 0;
  virtual int64_t queue_dropped() const = 0;

  virtual int64_t updates_applied() const = 0;
  virtual int64_t plan_builds() const = 0;
  virtual double total_plan_build_seconds() const = 0;

  /// Historical reconstruction (empty/nullopt when history recording is
  /// off -- check records_history() first).
  virtual bool records_history() const = 0;
  virtual std::vector<NodeId> HistoricalRangeAt(const Rect& range,
                                                double t) const = 0;
  virtual std::optional<Point> HistoricalPositionAt(NodeId id,
                                                    double t) const = 0;
  virtual int64_t history_bytes() const = 0;
};

}  // namespace lira

#endif  // LIRA_SERVER_SERVER_PIPELINE_H_
