// Pipeline stage 2: the server's belief state.
//
// Owns the PositionTracker (current motion model per node), the optional
// TPR-tree used for incremental range answering, and the optional
// HistoryStore retaining every applied model. One Apply call keeps all
// three consistent; Forget retracts a node's *current* model when its
// ownership migrates to another shard (the history is retained -- past
// answers stay valid at the shard that served them).

#ifndef LIRA_SERVER_TRACKER_STAGE_H_
#define LIRA_SERVER_TRACKER_STAGE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"
#include "lira/index/tpr_tree.h"
#include "lira/mobility/position.h"
#include "lira/motion/dead_reckoning.h"
#include "lira/motion/linear_model.h"
#include "lira/server/history_store.h"

namespace lira {

/// Tracker + index + history, applied to in lock step. Not thread-safe;
/// distinct stages (cluster shards) are fully independent.
class TrackerStage {
 public:
  static StatusOr<TrackerStage> Create(int32_t num_nodes, bool maintain_index,
                                       bool record_history);

  /// Applies one surviving update to the tracker and, when enabled, the
  /// TPR-tree and the history store.
  void Apply(const ModelUpdate& update);

  /// Takes over a node migrating from another shard: reinstates its model
  /// in the tracker (without counting as a newly applied update), the
  /// TPR-tree, and the history store, so the adopting shard answers
  /// historical and current queries exactly as the previous owner would
  /// have. Counterpart of Forget on the losing shard.
  void Adopt(const ModelUpdate& update);

  /// Drops the node's current model from the tracker and the TPR-tree (the
  /// history keeps its records). Used on cross-shard handoff.
  void Forget(NodeId id);

  /// The node's current believed model; nullopt when it never reported here
  /// or was forgotten. The migration source for Adopt.
  std::optional<LinearMotionModel> ModelOf(NodeId id) const {
    return tracker_.ModelOf(id);
  }

  /// Conservative bounding box of every indexed node's believed position at
  /// time t from the TPR-tree root (nullopt when the stage tracks no
  /// nodes). Requires maintain_index. Lets the cluster prove a shard's
  /// whole population lies inside its strip before evaluating a clipped
  /// sub-query (DESIGN.md §12).
  std::optional<Rect> BoundsAt(double t) const { return index_.BoundsAt(t); }

  /// Ids whose believed position at time t lies in `range`, from the
  /// TPR-tree. Requires maintain_index.
  StatusOr<std::vector<NodeId>> RangeAt(const Rect& range, double t) const;

  const PositionTracker& tracker() const { return tracker_; }
  bool maintain_index() const { return maintain_index_; }
  /// nullptr when record_history is off.
  const HistoryStore* history() const {
    return history_.has_value() ? &*history_ : nullptr;
  }
  int64_t updates_applied() const { return tracker_.updates_applied(); }

 private:
  TrackerStage(int32_t num_nodes, bool maintain_index, bool record_history,
               TprTree index);

  PositionTracker tracker_;
  TprTree index_;
  bool maintain_index_;
  std::optional<HistoryStore> history_;
};

}  // namespace lira

#endif  // LIRA_SERVER_TRACKER_STAGE_H_
