#include "lira/server/shard_map.h"

#include <algorithm>

namespace lira {
namespace {

bool IsPowerOfTwo(int32_t v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

ShardMap::ShardMap(const Rect& world, int32_t alpha, int32_t shards)
    : world_(world),
      alpha_(alpha),
      cell_w_(world.width() / alpha),
      shard_of_col_(alpha, 0),
      col_begin_(shards + 1, 0) {
  // Balanced contiguous strips: shard k owns columns
  // [k * alpha / S, (k + 1) * alpha / S).
  for (int32_t k = 0; k <= shards; ++k) {
    col_begin_[k] = static_cast<int32_t>(
        static_cast<int64_t>(k) * alpha / shards);
  }
  for (int32_t k = 0; k < shards; ++k) {
    for (int32_t col = col_begin_[k]; col < col_begin_[k + 1]; ++col) {
      shard_of_col_[col] = k;
    }
  }
}

StatusOr<ShardMap> ShardMap::Create(const Rect& world, int32_t alpha,
                                    int32_t shards) {
  if (world.width() <= 0.0 || world.height() <= 0.0) {
    return InvalidArgumentError("world rectangle must be non-degenerate");
  }
  if (!IsPowerOfTwo(alpha)) {
    return InvalidArgumentError("alpha must be a positive power of two");
  }
  if (shards < 1 || shards > alpha) {
    return InvalidArgumentError("shards must be in [1, alpha]");
  }
  return ShardMap(world, alpha, shards);
}

int32_t ShardMap::ShardFor(Point p) const {
  p = world_.Clamp(p);
  const auto col = std::clamp(
      static_cast<int32_t>((p.x - world_.min_x) / cell_w_), 0, alpha_ - 1);
  return shard_of_col_[col];
}

Rect ShardMap::ShardRect(int32_t shard) const {
  return Rect{world_.min_x + col_begin_[shard] * cell_w_, world_.min_y,
              world_.min_x + col_begin_[shard + 1] * cell_w_, world_.max_y};
}

}  // namespace lira
