#include "lira/server/shard_map.h"

#include <algorithm>
#include <cstdlib>

#include "lira/common/check.h"

namespace lira {
namespace {

bool IsPowerOfTwo(int32_t v) { return v > 0 && (v & (v - 1)) == 0; }

}  // namespace

ShardMap::ShardMap(const Rect& world, int32_t alpha, int32_t shards)
    : world_(world),
      alpha_(alpha),
      cell_w_(world.width() / alpha),
      shard_of_col_(alpha, 0),
      col_begin_(shards + 1, 0) {
  // Balanced contiguous strips: shard k owns columns
  // [k * alpha / S, (k + 1) * alpha / S).
  for (int32_t k = 0; k <= shards; ++k) {
    col_begin_[k] = static_cast<int32_t>(
        static_cast<int64_t>(k) * alpha / shards);
  }
  RefreshColumnOwners();
}

StatusOr<ShardMap> ShardMap::Create(const Rect& world, int32_t alpha,
                                    int32_t shards) {
  if (world.width() <= 0.0 || world.height() <= 0.0) {
    return InvalidArgumentError("world rectangle must be non-degenerate");
  }
  if (!IsPowerOfTwo(alpha)) {
    return InvalidArgumentError("alpha must be a positive power of two");
  }
  if (shards < 1 || shards > alpha) {
    return InvalidArgumentError("shards must be in [1, alpha]");
  }
  return ShardMap(world, alpha, shards);
}

void ShardMap::RefreshColumnOwners() {
  const int32_t shards = num_shards();
  for (int32_t k = 0; k < shards; ++k) {
    for (int32_t col = col_begin_[k]; col < col_begin_[k + 1]; ++col) {
      shard_of_col_[col] = k;
    }
  }
}

int32_t ShardMap::ColumnOf(Point p) const {
  p = world_.Clamp(p);
  return std::clamp(static_cast<int32_t>((p.x - world_.min_x) / cell_w_), 0,
                    alpha_ - 1);
}

int32_t ShardMap::ShardFor(Point p) const {
  return shard_of_col_[ColumnOf(p)];
}

Rect ShardMap::ShardRect(int32_t shard) const {
  return Rect{world_.min_x + col_begin_[shard] * cell_w_, world_.min_y,
              world_.min_x + col_begin_[shard + 1] * cell_w_, world_.max_y};
}

int32_t ShardMap::Rebalance(const std::vector<int64_t>& column_load,
                            int32_t max_moves) {
  LIRA_CHECK(static_cast<int32_t>(column_load.size()) == alpha_);
  LIRA_CHECK(max_moves >= 0);
  const int32_t shards = num_shards();
  if (shards == 1 || max_moves == 0) {
    return 0;
  }
  // prefix[c] = load of columns [0, c); all-integer so every replica that
  // sees the same merged grid computes the identical split.
  std::vector<int64_t> prefix(static_cast<size_t>(alpha_) + 1, 0);
  for (int32_t c = 0; c < alpha_; ++c) {
    LIRA_CHECK(column_load[c] >= 0);
    prefix[c + 1] = prefix[c] + column_load[c];
  }
  const int64_t total = prefix[alpha_];
  if (total == 0) {
    return 0;
  }
  std::vector<int32_t> next(col_begin_);
  int32_t moved = 0;
  for (int32_t k = 1; k < shards; ++k) {
    // Balanced prefix: smallest c with prefix[c] >= k * total / S, compared
    // as prefix[c] * S >= k * total to stay in exact integers.
    int32_t ideal = 0;
    while (ideal < alpha_ &&
           prefix[ideal] * static_cast<int64_t>(shards) <
               static_cast<int64_t>(k) * total) {
      ++ideal;
    }
    // Hysteresis: at most max_moves columns of travel per boundary per
    // epoch, then monotonicity with >= 1 column per shard on both sides.
    int32_t b = std::clamp(ideal, col_begin_[k] - max_moves,
                           col_begin_[k] + max_moves);
    b = std::clamp(b, next[k - 1] + 1, alpha_ - (shards - k));
    moved += std::abs(b - col_begin_[k]);
    next[k] = b;
  }
  if (moved == 0) {
    return 0;
  }
  col_begin_ = std::move(next);
  RefreshColumnOwners();
  ++epoch_;
  return moved;
}

}  // namespace lira
