// Spatial shard routing for ServerCluster.
//
// The world is split into S vertical strips of whole statistics-grid
// columns (alpha columns, balanced to within one column per shard), so a
// shard's region is exactly a union of grid cells: per-shard StatisticsGrid
// contributions never straddle a shard boundary cell, and the coordinator's
// Merge reconstructs the global grid cell-for-cell. Routing a point is two
// multiplies and a clamp -- the same column computation the grid itself
// uses -- so the ingest fan-out adds O(1) per update.

#ifndef LIRA_SERVER_SHARD_MAP_H_
#define LIRA_SERVER_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"

namespace lira {

class ShardMap {
 public:
  /// `alpha` is the statistics-grid resolution (positive power of two);
  /// `shards` must be in [1, alpha] so every shard owns at least one
  /// column.
  static StatusOr<ShardMap> Create(const Rect& world, int32_t alpha,
                                   int32_t shards);

  int32_t num_shards() const {
    return static_cast<int32_t>(col_begin_.size()) - 1;
  }
  int32_t alpha() const { return alpha_; }
  const Rect& world() const { return world_; }

  /// Shard owning the grid column that contains p (clamped into the
  /// world).
  int32_t ShardFor(Point p) const;

  /// Geographic extent of a shard: its contiguous column strip.
  Rect ShardRect(int32_t shard) const;

  /// Grid columns [first, last) owned by `shard`.
  int32_t ColumnBegin(int32_t shard) const { return col_begin_[shard]; }
  int32_t ColumnEnd(int32_t shard) const { return col_begin_[shard + 1]; }

 private:
  ShardMap(const Rect& world, int32_t alpha, int32_t shards);

  Rect world_;
  int32_t alpha_;
  double cell_w_;
  /// Column -> owning shard (size alpha).
  std::vector<int32_t> shard_of_col_;
  /// Shard k owns columns [col_begin_[k], col_begin_[k + 1]).
  std::vector<int32_t> col_begin_;
};

}  // namespace lira

#endif  // LIRA_SERVER_SHARD_MAP_H_
