// Spatial shard routing for ServerCluster.
//
// The world is split into S vertical strips of whole statistics-grid
// columns, so a shard's region is exactly a union of grid cells: per-shard
// StatisticsGrid contributions never straddle a shard boundary cell, and
// the coordinator's Merge reconstructs the global grid cell-for-cell.
// Routing a point is two multiplies and a clamp -- the same column
// computation the grid itself uses -- so the ingest fan-out adds O(1) per
// update.
//
// The map is epoch-versioned (DESIGN.md §12): it starts as the balanced
// even split (epoch 0) and the cluster coordinator may Rebalance() it from
// observed per-column load. A rebalance is a pure function of the integer
// column loads, the previous boundaries, and the hysteresis bound, so any
// replica (or any thread count) fed the same merged statistics computes the
// identical next map. Strips stay contiguous across epochs: only the
// boundary positions move, each by at most `max_moves` columns per epoch,
// and every shard always keeps at least one column.

#ifndef LIRA_SERVER_SHARD_MAP_H_
#define LIRA_SERVER_SHARD_MAP_H_

#include <cstdint>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"

namespace lira {

class ShardMap {
 public:
  /// `alpha` is the statistics-grid resolution (positive power of two);
  /// `shards` must be in [1, alpha] so every shard owns at least one
  /// column.
  static StatusOr<ShardMap> Create(const Rect& world, int32_t alpha,
                                   int32_t shards);

  int32_t num_shards() const {
    return static_cast<int32_t>(col_begin_.size()) - 1;
  }
  int32_t alpha() const { return alpha_; }
  const Rect& world() const { return world_; }

  /// Rebalance generation: 0 for the initial even split, +1 per rebalance
  /// that actually moved a boundary.
  int64_t epoch() const { return epoch_; }

  /// Grid column of the (clamped) point -- the same floor arithmetic the
  /// statistics grid uses, exposed so load accounting and routing agree.
  int32_t ColumnOf(Point p) const;

  /// Shard owning the grid column that contains p (clamped into the
  /// world).
  int32_t ShardFor(Point p) const;

  /// Geographic extent of a shard: its contiguous column strip.
  Rect ShardRect(int32_t shard) const;

  /// Grid columns [first, last) owned by `shard`.
  int32_t ColumnBegin(int32_t shard) const { return col_begin_[shard]; }
  int32_t ColumnEnd(int32_t shard) const { return col_begin_[shard + 1]; }

  /// Re-splits the columns from observed load (one non-negative entry per
  /// column, e.g. the merged StatisticsGrid's per-column node counts): each
  /// internal boundary moves toward its balanced-prefix position -- the
  /// smallest column index where the cumulative load reaches k/S of the
  /// total, compared in exact integer arithmetic -- clamped to at most
  /// `max_moves` columns of travel per call (the per-epoch hysteresis
  /// bound) and to leaving every shard at least one column. Returns the
  /// total boundary travel in columns (== columns that changed owner,
  /// summed over boundaries); the epoch increments iff that is non-zero.
  /// A zero total load is a no-op: no information, no movement.
  int32_t Rebalance(const std::vector<int64_t>& column_load,
                    int32_t max_moves);

 private:
  ShardMap(const Rect& world, int32_t alpha, int32_t shards);

  /// Rebuilds the column -> shard table from col_begin_.
  void RefreshColumnOwners();

  Rect world_;
  int32_t alpha_;
  double cell_w_;
  int64_t epoch_ = 0;
  /// Column -> owning shard (size alpha).
  std::vector<int32_t> shard_of_col_;
  /// Shard k owns columns [col_begin_[k], col_begin_[k + 1]).
  std::vector<int32_t> col_begin_;
};

}  // namespace lira

#endif  // LIRA_SERVER_SHARD_MAP_H_
