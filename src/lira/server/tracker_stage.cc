#include "lira/server/tracker_stage.h"

#include <utility>

namespace lira {

TrackerStage::TrackerStage(int32_t num_nodes, bool maintain_index,
                           bool record_history, TprTree index)
    : tracker_(num_nodes),
      index_(std::move(index)),
      maintain_index_(maintain_index),
      history_(record_history
                   ? std::optional<HistoryStore>(HistoryStore(num_nodes))
                   : std::nullopt) {}

StatusOr<TrackerStage> TrackerStage::Create(int32_t num_nodes,
                                            bool maintain_index,
                                            bool record_history) {
  if (num_nodes <= 0) {
    return InvalidArgumentError("num_nodes must be positive");
  }
  auto index = TprTree::Create();
  if (!index.ok()) {
    return index.status();
  }
  return TrackerStage(num_nodes, maintain_index, record_history,
                      *std::move(index));
}

void TrackerStage::Apply(const ModelUpdate& update) {
  tracker_.Apply(update);
  if (maintain_index_) {
    index_.Update(update.node_id, update.model);
  }
  if (history_.has_value()) {
    history_->Record(update);
  }
}

void TrackerStage::Adopt(const ModelUpdate& update) {
  tracker_.Restore(update);
  if (maintain_index_) {
    index_.Update(update.node_id, update.model);
  }
  if (history_.has_value()) {
    // HistoryStore::Record inserts at the sorted position and replaces a
    // duplicate t0, so re-recording the migrated model is idempotent and
    // keeps LastReportBefore answers identical to the previous owner's.
    history_->Record(update);
  }
}

void TrackerStage::Forget(NodeId id) {
  tracker_.Forget(id);
  if (maintain_index_) {
    index_.Remove(id);
  }
}

StatusOr<std::vector<NodeId>> TrackerStage::RangeAt(const Rect& range,
                                                    double t) const {
  if (!maintain_index_) {
    return FailedPreconditionError("server index maintenance is disabled");
  }
  return index_.QueryAt(range, t);
}

}  // namespace lira
