#include "lira/server/optimizer_stage.h"

#include <chrono>
#include <utility>

namespace lira {

OptimizerStage::OptimizerStage(const OptimizerStageConfig& config,
                               ThrotLoop throt_loop, SheddingPlan plan)
    : adaptation_period_(config.adaptation_period),
      service_rate_(config.service_rate),
      auto_throttle_(config.auto_throttle),
      fixed_z_(config.fixed_z),
      telemetry_(config.telemetry),
      pool_(config.pool),
      throt_loop_(std::move(throt_loop)),
      plan_(std::move(plan)),
      z_(config.auto_throttle ? 1.0 : config.fixed_z),
      lambda_name_(config.metric_prefix + ".throtloop.lambda"),
      utilization_name_(config.metric_prefix + ".throtloop.utilization"),
      z_name_(config.metric_prefix + ".throtloop.z"),
      window_dropped_name_(config.metric_prefix + ".queue.window_dropped"),
      plan_build_name_(config.metric_prefix + ".adapt.plan_build_seconds"),
      plan_regions_name_(config.metric_prefix + ".plan.regions"),
      plan_min_delta_name_(config.metric_prefix + ".plan.min_delta"),
      plan_max_delta_name_(config.metric_prefix + ".plan.max_delta"),
      plan_rebuilt_name_(config.metric_prefix + ".plan.rebuilt") {}

StatusOr<OptimizerStage> OptimizerStage::Create(
    const OptimizerStageConfig& config, const Rect& world,
    double initial_delta) {
  if (config.service_rate <= 0.0) {
    return InvalidArgumentError("service_rate must be positive");
  }
  if (config.adaptation_period <= 0.0) {
    return InvalidArgumentError("adaptation_period must be positive");
  }
  if (!config.auto_throttle &&
      (config.fixed_z < 0.0 || config.fixed_z > 1.0)) {
    return InvalidArgumentError("fixed_z must be in [0, 1]");
  }
  ThrotLoopConfig throttle_config;
  throttle_config.queue_capacity = config.queue_capacity;
  auto throt_loop = ThrotLoop::Create(throttle_config);
  if (!throt_loop.ok()) {
    return throt_loop.status();
  }
  // Until the first adaptation every node runs at maximum accuracy.
  SheddingPlan initial_plan = SheddingPlan::MakeUniform(world, initial_delta);
  return OptimizerStage(config, *std::move(throt_loop),
                        std::move(initial_plan));
}

double OptimizerStage::UpdateThrottle(int64_t window_arrivals,
                                      int64_t window_dropped, double now) {
  const double lambda =
      static_cast<double>(window_arrivals) / adaptation_period_;
  const double previous_z = z_;
  z_ = throt_loop_.Update(lambda, service_rate_);
  last_lambda_ = lambda;
  last_utilization_ = lambda / service_rate_;
  if (telemetry_ != nullptr) {
    telemetry_->SampleGauge(lambda_name_, now, lambda);
    telemetry_->SampleGauge(utilization_name_, now, lambda / service_rate_);
    telemetry_->SampleGauge(z_name_, now, z_);
    telemetry_->SampleGauge(window_dropped_name_, now,
                            static_cast<double>(window_dropped));
    if (z_ != previous_z) {
      telemetry_->Emit(telemetry::EventKind::kZChanged, z_name_, now, z_,
                       lambda);
    }
  }
  return z_;
}

double OptimizerStage::FixedThrottle(double now) {
  z_ = fixed_z_;
  if (telemetry_ != nullptr) {
    telemetry_->SampleGauge(z_name_, now, z_);
  }
  return z_;
}

Status OptimizerStage::BuildPlan(const LoadSheddingPolicy& policy,
                                 const StatisticsGrid& stats,
                                 const UpdateReductionFunction& reduction,
                                 double now) {
  PolicyContext ctx;
  ctx.stats = &stats;
  ctx.reduction = &reduction;
  ctx.z = z_;
  ctx.telemetry = telemetry_;
  ctx.now = now;
  ctx.pool = pool_;
  const auto start = std::chrono::steady_clock::now();
  auto plan = policy.BuildPlan(ctx);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  if (!plan.ok()) {
    return plan.status();
  }
  plan_ = *std::move(plan);
  const double build_seconds = std::chrono::duration<double>(elapsed).count();
  plan_build_seconds_ += build_seconds;
  ++plan_builds_;
  if (telemetry_ != nullptr) {
    telemetry_->RecordSpan(plan_build_name_, now, build_seconds);
    telemetry_->SampleGauge(plan_regions_name_, now,
                            static_cast<double>(plan_.NumRegions()));
    telemetry_->SampleGauge(plan_min_delta_name_, now, plan_.MinDelta());
    telemetry_->SampleGauge(plan_max_delta_name_, now, plan_.MaxDelta());
    telemetry_->Emit(telemetry::EventKind::kPlanRebuilt, plan_rebuilt_name_,
                     now, static_cast<double>(plan_.NumRegions()),
                     build_seconds);
  }
  return OkStatus();
}

}  // namespace lira
