// The server's position-update input queue: a bounded FIFO with random-
// order admission, drop accounting, and windowed rate measurement for
// THROTLOOP.

#ifndef LIRA_SERVER_UPDATE_QUEUE_H_
#define LIRA_SERVER_UPDATE_QUEUE_H_

#include <cstdint>
#include <vector>

#include "lira/common/bounded_queue.h"
#include "lira/common/rng.h"
#include "lira/common/status.h"
#include "lira/motion/linear_model.h"

namespace lira {

/// Bounded update FIFO. Arrivals within a tick are admitted in random order
/// so that tail drops under overload hit a uniform random subset -- the
/// paper's "random dropping of the updates".
class UpdateQueue {
 public:
  static StatusOr<UpdateQueue> Create(size_t capacity, uint64_t seed);

  /// Offers a batch of arrivals (one simulation tick's worth); returns how
  /// many were dropped because the queue was full.
  int64_t OfferAll(std::vector<ModelUpdate> updates);

  /// As above, but consumes the batch in place (it is shuffled and its
  /// elements moved from; the caller clears and reuses the buffer, keeping
  /// its capacity across ticks).
  int64_t OfferAll(std::vector<ModelUpdate>* updates);

  /// Dequeues up to `max_count` updates in FIFO order.
  std::vector<ModelUpdate> Drain(int64_t max_count);

  size_t size() const { return queue_.size(); }
  size_t capacity() const { return queue_.capacity(); }
  /// Largest queue depth ever observed (after admitting each batch).
  size_t high_watermark() const { return high_watermark_; }

  int64_t total_arrivals() const { return total_arrivals_; }
  int64_t total_dropped() const { return queue_.dropped(); }
  int64_t total_served() const { return total_served_; }

  /// Windowed counters for THROTLOOP's lambda measurement and per-window
  /// loss diagnostics.
  void ResetWindow();
  int64_t window_arrivals() const { return window_arrivals_; }
  int64_t window_served() const { return window_served_; }
  int64_t window_dropped() const { return window_dropped_; }

 private:
  UpdateQueue(size_t capacity, uint64_t seed)
      : queue_(capacity), rng_(seed) {}

  BoundedQueue<ModelUpdate> queue_;
  Rng rng_;
  int64_t total_arrivals_ = 0;
  int64_t total_served_ = 0;
  int64_t window_arrivals_ = 0;
  int64_t window_served_ = 0;
  int64_t window_dropped_ = 0;
  size_t high_watermark_ = 0;
};

}  // namespace lira

#endif  // LIRA_SERVER_UPDATE_QUEUE_H_
