#include "lira/server/ingest_stage.h"

#include <cmath>
#include <utility>

namespace lira {

IngestStage::IngestStage(const IngestStageConfig& config, UpdateQueue queue)
    : queue_(std::move(queue)),
      service_rate_(config.service_rate),
      emit_events_(config.emit_events),
      telemetry_(config.telemetry),
      dropped_event_name_(config.metric_prefix + ".queue.dropped") {
  if (telemetry_ != nullptr) {
    telemetry::MetricRegistry& metrics = telemetry_->metrics();
    const std::string& prefix = config.metric_prefix;
    arrivals_counter_ = metrics.GetCounter(prefix + ".queue.arrivals");
    dropped_counter_ = metrics.GetCounter(prefix + ".queue.dropped");
    depth_gauge_ = metrics.GetGauge(prefix + ".queue.depth");
    high_watermark_gauge_ = metrics.GetGauge(prefix + ".queue.high_watermark");
  }
}

StatusOr<IngestStage> IngestStage::Create(const IngestStageConfig& config) {
  if (config.service_rate <= 0.0) {
    return InvalidArgumentError("service_rate must be positive");
  }
  auto queue = UpdateQueue::Create(config.queue_capacity, config.seed);
  if (!queue.ok()) {
    return queue.status();
  }
  return IngestStage(config, *std::move(queue));
}

int64_t IngestStage::Receive(std::vector<ModelUpdate>* updates, double now) {
  const auto arrived = static_cast<int64_t>(updates->size());
  const int64_t dropped = queue_.OfferAll(updates);
  if (telemetry_ != nullptr) {
    arrivals_counter_->Increment(arrived);
    depth_gauge_->Set(static_cast<double>(queue_.size()));
    high_watermark_gauge_->Set(static_cast<double>(queue_.high_watermark()));
    if (dropped > 0) {
      dropped_counter_->Increment(dropped);
      if (emit_events_) {
        telemetry_->Emit(telemetry::EventKind::kQueueOverflow,
                         dropped_event_name_, now,
                         static_cast<double>(dropped),
                         static_cast<double>(queue_.size()));
      }
    }
  }
  return dropped;
}

std::vector<ModelUpdate> IngestStage::Service(double dt) {
  service_credit_ += service_rate_ * dt;
  const auto serve = static_cast<int64_t>(std::floor(service_credit_));
  service_credit_ -= static_cast<double>(serve);
  return queue_.Drain(serve);
}

}  // namespace lira
