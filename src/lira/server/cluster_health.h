// Cluster health snapshots (DESIGN.md §10): a point-in-time summary of a
// ServerCluster -- per-shard occupancy and queue state plus the load-skew
// statistics the rebalancing roadmap item needs (max/mean shard occupancy
// and their imbalance ratio) -- serializable as JSON (one line per
// snapshot, JSONL-friendly) and as Prometheus text exposition alongside the
// full metric registry.

#ifndef LIRA_SERVER_CLUSTER_HEALTH_H_
#define LIRA_SERVER_CLUSTER_HEALTH_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "lira/telemetry/metrics.h"

namespace lira {

struct ShardHealth {
  int32_t shard = 0;
  /// Nodes currently owned by the shard (ownership follows the updates).
  int64_t nodes_owned = 0;
  int64_t queue_depth = 0;
  /// Cumulative arrivals / drops at this shard's queue.
  int64_t queue_arrivals = 0;
  int64_t queue_dropped = 0;
  /// Heap bytes held by the shard tracker's motion-model columns.
  int64_t tracker_bytes = 0;
  /// Grid columns [col_begin, col_end) the shard owns under the current
  /// map epoch (DESIGN.md §12).
  int32_t col_begin = 0;
  int32_t col_end = 0;
};

struct ClusterHealth {
  /// Server clock (seconds) and tick count at snapshot time.
  double time = 0.0;
  int64_t tick = 0;
  int32_t num_shards = 0;
  double z = 0.0;
  /// Nodes with a known owner, summed over shards.
  int64_t total_nodes = 0;
  /// Load-skew statistics over per-shard owned-node counts. The imbalance
  /// ratio is max/mean (1.0 = perfectly balanced, 0 when no nodes are
  /// tracked yet); a sustained high ratio is the signal shard rebalancing
  /// would act on (ROADMAP).
  int64_t max_shard_nodes = 0;
  double mean_shard_nodes = 0.0;
  double imbalance_ratio = 0.0;
  /// Memory shape (ISSUE 8): tracker column bytes summed over shards, and
  /// that total per configured node.
  int64_t tracker_bytes = 0;
  double bytes_per_node = 0.0;
  /// Shard-map rebalancing state (DESIGN.md §12): the current map epoch,
  /// how many rebalances have fired, and how many node ownerships they
  /// migrated, cumulatively.
  int64_t map_epoch = 0;
  int64_t rebalances = 0;
  int64_t nodes_migrated = 0;
  std::vector<ShardHealth> shards;
};

/// One JSON object (no trailing newline), e.g.
///   {"time":12.5,"tick":250,"num_shards":4,"z":0.8,"total_nodes":100,
///    "max_shard_nodes":40,"mean_shard_nodes":25.0,"imbalance_ratio":1.6,
///    "shards":[{"shard":0,"nodes_owned":40,...}, ...]}
void WriteHealthJson(const ClusterHealth& health, std::ostream& out);

/// Prometheus text exposition: lira_cluster_* gauges for the snapshot
/// (per-shard series labeled shard="k"), followed by the registry's full
/// exposition (telemetry::WritePrometheus) when `metrics` is non-null.
void WriteHealthPrometheus(const ClusterHealth& health,
                           const telemetry::MetricRegistry* metrics,
                           std::ostream& out);

}  // namespace lira

#endif  // LIRA_SERVER_CLUSTER_HEALTH_H_
