// The mobile CQ server (paper Section 2.2, first layer).
//
// The server owns the bounded update queue, services it at a fixed rate,
// applies surviving updates to its position tracker, maintains the
// statistics grid from its *believed* (dead-reckoned) node states, and
// periodically re-runs the load-shedding pipeline:
//
//   THROTLOOP (z)  ->  policy (GRIDREDUCE + GREEDYINCREMENT for LIRA)
//                  ->  new SheddingPlan, disseminated to the nodes.

#ifndef LIRA_SERVER_CQ_SERVER_H_
#define LIRA_SERVER_CQ_SERVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/rng.h"
#include "lira/common/status.h"
#include "lira/core/policy.h"
#include "lira/core/shedding_plan.h"
#include "lira/core/statistics_grid.h"
#include "lira/core/throt_loop.h"
#include "lira/cq/query_registry.h"
#include "lira/index/tpr_tree.h"
#include "lira/motion/dead_reckoning.h"
#include "lira/motion/update_reduction.h"
#include "lira/server/history_store.h"
#include "lira/server/update_queue.h"
#include "lira/telemetry/telemetry.h"

namespace lira {

struct CqServerConfig {
  int32_t num_nodes = 0;
  Rect world;
  /// Statistics-grid resolution (power of two).
  int32_t alpha = 128;
  /// Input queue capacity B.
  size_t queue_capacity = 500;
  /// Service rate mu, updates/second.
  double service_rate = 1000.0;
  /// Seconds between adaptation steps (plan rebuilds).
  double adaptation_period = 30.0;
  /// When true, z comes from THROTLOOP; otherwise fixed_z is used.
  bool auto_throttle = false;
  double fixed_z = 0.5;
  /// Margin (meters) added around query rectangles when counting them into
  /// the statistics grid; negative means "use the reduction function's
  /// delta_max" (see StatisticsGrid::AddQueries).
  double query_margin = -1.0;
  /// When true the server maintains a TPR-tree over the tracked motion
  /// models and can answer range queries incrementally (AnswerQuery);
  /// turning it off saves the index-maintenance cost for deployments that
  /// evaluate queries elsewhere.
  bool maintain_index = true;
  /// When true the server retains every applied motion model in a
  /// HistoryStore, enabling historical snapshot queries (the capability the
  /// paper's fairness threshold protects, Section 3.1.1).
  bool record_history = false;
  /// Fraction of tracked nodes fed into the statistics grid at each
  /// adaptation (paper Section 3.2.1: "the statistics can easily be
  /// approximated using sampling"); counts are scaled by the inverse so the
  /// optimizer sees unbiased totals. 1.0 = exact maintenance.
  double stats_sample_fraction = 1.0;
  /// When true (and stats_sample_fraction == 1.0) the statistics grid is
  /// delta-maintained across adaptations: each node's previous contribution
  /// is relocated only when its cell or quantized speed changed, instead of
  /// ClearNodes() + full repopulation. Bitwise identical to the rebuild
  /// (integer grid accumulators; neither path consumes stats RNG at
  /// fraction 1.0). Sampled statistics fall back to the rebuild.
  bool incremental_stats = true;
  /// Optional telemetry (not owned; must outlive the server). When set, the
  /// server maintains `lira.queue.*` instruments on every Receive and
  /// records the adaptation loop -- z trajectory, per-stage plan-build
  /// spans, plan shape gauges, typed events (DESIGN.md "Telemetry").
  /// nullptr disables all instrumentation at the cost of a pointer test.
  telemetry::TelemetrySink* telemetry = nullptr;
  uint64_t seed = 1234;
};

/// Single-threaded discrete-time CQ server.
class CqServer {
 public:
  /// `policy`, `reduction` and `queries` must outlive the server. The
  /// registry may gain queries while the server runs (InstallQueries); the
  /// statistics grid refreshes its query counts at every adaptation.
  static StatusOr<CqServer> Create(const CqServerConfig& config,
                                   const LoadSheddingPolicy* policy,
                                   const UpdateReductionFunction* reduction,
                                   const QueryRegistry* queries);

  /// Points the server at a (possibly different) query registry -- the CQ
  /// workload changed. Takes effect at the next adaptation step (or an
  /// explicit Adapt()). The registry must outlive the server.
  Status InstallQueries(const QueryRegistry* queries);

  /// Enqueues a batch of arriving position updates (drops when full).
  void Receive(std::vector<ModelUpdate> updates);

  /// As Receive, but consumes `*updates` in place (shuffled, elements moved
  /// from) so the caller can clear and reuse the buffer's capacity across
  /// ticks -- the simulator's frame loop calls this every frame.
  void ReceiveBatch(std::vector<ModelUpdate>* updates);

  /// Advances the server clock by dt seconds: services the queue and runs
  /// the adaptation step when the period elapses.
  Status Tick(double dt);

  /// Forces an adaptation step immediately (also used internally).
  Status Adapt();

  /// Answers an installed continual query from the TPR-tree at the server's
  /// current time. Requires maintain_index.
  StatusOr<std::vector<NodeId>> AnswerQuery(QueryId query) const;

  /// Answers an ad-hoc snapshot range query at time t >= now. Requires
  /// maintain_index.
  StatusOr<std::vector<NodeId>> AnswerRange(const Rect& range,
                                            double t) const;

  /// Answers a historical snapshot range query at a past time t. Requires
  /// record_history.
  StatusOr<std::vector<NodeId>> AnswerHistoricalRange(const Rect& range,
                                                      double t) const;

  /// The history store, or nullptr when record_history is off.
  const HistoryStore* history() const {
    return history_.has_value() ? &*history_ : nullptr;
  }

  double time() const { return time_; }
  double z() const { return z_; }
  const SheddingPlan& plan() const { return plan_; }
  const PositionTracker& tracker() const { return tracker_; }
  const UpdateQueue& queue() const { return queue_; }
  const StatisticsGrid& stats() const { return stats_; }

  /// Cumulative time spent building plans (seconds) and number of builds,
  /// for the server-side-cost experiments.
  double total_plan_build_seconds() const { return plan_build_seconds_; }
  int64_t plan_builds() const { return plan_builds_; }
  int64_t updates_applied() const { return tracker_.updates_applied(); }

 private:
  CqServer(const CqServerConfig& config, const LoadSheddingPolicy* policy,
           const UpdateReductionFunction* reduction,
           const QueryRegistry* queries, StatisticsGrid stats,
           UpdateQueue queue, ThrotLoop throt_loop, SheddingPlan plan,
           TprTree index);

  void RebuildNodeStatistics();
  void RebuildQueryStatistics();
  void UpdateQueueTelemetry(int64_t arrived, int64_t dropped);

  /// Queue instruments resolved once at construction (registry lookups are
  /// map accesses; Receive runs every tick).
  struct QueueInstruments {
    telemetry::Counter* arrivals = nullptr;
    telemetry::Counter* dropped = nullptr;
    telemetry::Gauge* depth = nullptr;
    telemetry::Gauge* high_watermark = nullptr;
  };

  /// True when the delta-maintenance fast path owns the node statistics.
  bool IncrementalStatsEnabled() const {
    return config_.incremental_stats && config_.stats_sample_fraction == 1.0;
  }

  CqServerConfig config_;
  const LoadSheddingPolicy* policy_;
  const UpdateReductionFunction* reduction_;
  const QueryRegistry* queries_;
  StatisticsGrid stats_;
  UpdateQueue queue_;
  ThrotLoop throt_loop_;
  PositionTracker tracker_;
  TprTree index_;
  std::optional<HistoryStore> history_;
  SheddingPlan plan_;
  double time_ = 0.0;
  double z_;
  double service_credit_ = 0.0;
  double next_adaptation_;
  Rng stats_rng_;
  double plan_build_seconds_ = 0.0;
  int64_t plan_builds_ = 0;
  QueueInstruments queue_instruments_;
  /// Delta-maintenance state: each node's last contribution to the grid
  /// (flat cell index, -1 = none, and the speed it was added with).
  std::vector<int32_t> stats_cell_of_;
  std::vector<double> stats_speed_of_;
  /// Query-count refresh skip: (registry size, margin) of the counts
  /// currently in the grid. The registry is append-only, so the size
  /// captures content changes; InstallQueries invalidates explicitly.
  bool query_stats_valid_ = false;
  int32_t query_stats_size_ = -1;
  double query_stats_margin_ = -1.0;
  telemetry::Counter* cells_dirtied_counter_ = nullptr;
};

}  // namespace lira

#endif  // LIRA_SERVER_CQ_SERVER_H_
