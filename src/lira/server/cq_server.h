// The mobile CQ server (paper Section 2.2, first layer).
//
// A thin facade over the four pipeline stages:
//
//   IngestStage    bounded queue, drop accounting, service pacing
//   TrackerStage   position tracker + TPR index + history
//   StatsStage     incremental StatisticsGrid maintenance
//   OptimizerStage THROTLOOP (z) -> policy (GRIDREDUCE + GREEDYINCREMENT
//                  for LIRA) -> new SheddingPlan
//
// The facade owns the clock and the adaptation schedule and wires the
// stages together exactly as the original monolithic server did; its
// public API, metric names, and bitwise behavior are unchanged. The stages
// are separately constructible and tested (tests/server/*_stage_test), and
// ServerCluster composes S ingest/tracker/stats triples under one
// coordinator-owned optimizer (server_cluster.h).

#ifndef LIRA_SERVER_CQ_SERVER_H_
#define LIRA_SERVER_CQ_SERVER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/parallel.h"
#include "lira/common/status.h"
#include "lira/core/policy.h"
#include "lira/core/shedding_plan.h"
#include "lira/core/statistics_grid.h"
#include "lira/cq/query_registry.h"
#include "lira/motion/dead_reckoning.h"
#include "lira/motion/update_reduction.h"
#include "lira/server/history_store.h"
#include "lira/server/ingest_stage.h"
#include "lira/server/optimizer_stage.h"
#include "lira/server/server_pipeline.h"
#include "lira/server/stats_stage.h"
#include "lira/server/tracker_stage.h"
#include "lira/server/update_queue.h"
#include "lira/telemetry/flight_recorder.h"
#include "lira/telemetry/telemetry.h"
#include "lira/telemetry/trace.h"

namespace lira {

struct CqServerConfig {
  int32_t num_nodes = 0;
  Rect world;
  /// Statistics-grid resolution (power of two).
  int32_t alpha = 128;
  /// Input queue capacity B.
  size_t queue_capacity = 500;
  /// Service rate mu, updates/second.
  double service_rate = 1000.0;
  /// Seconds between adaptation steps (plan rebuilds).
  double adaptation_period = 30.0;
  /// When true, z comes from THROTLOOP; otherwise fixed_z is used.
  bool auto_throttle = false;
  double fixed_z = 0.5;
  /// Margin (meters) added around query rectangles when counting them into
  /// the statistics grid; negative means "use the reduction function's
  /// delta_max" (see StatisticsGrid::AddQueries).
  double query_margin = -1.0;
  /// When true the server maintains a TPR-tree over the tracked motion
  /// models and can answer range queries incrementally (AnswerQuery);
  /// turning it off saves the index-maintenance cost for deployments that
  /// evaluate queries elsewhere.
  bool maintain_index = true;
  /// When true the server retains every applied motion model in a
  /// HistoryStore, enabling historical snapshot queries (the capability the
  /// paper's fairness threshold protects, Section 3.1.1).
  bool record_history = false;
  /// Fraction of tracked nodes fed into the statistics grid at each
  /// adaptation (paper Section 3.2.1: "the statistics can easily be
  /// approximated using sampling"); counts are scaled by the inverse so the
  /// optimizer sees unbiased totals. 1.0 = exact maintenance.
  double stats_sample_fraction = 1.0;
  /// When true (and stats_sample_fraction == 1.0) the statistics grid is
  /// delta-maintained across adaptations: each node's previous contribution
  /// is relocated only when its cell or quantized speed changed, instead of
  /// ClearNodes() + full repopulation. Bitwise identical to the rebuild
  /// (integer grid accumulators; neither path consumes stats RNG at
  /// fraction 1.0). Sampled statistics fall back to the rebuild.
  bool incremental_stats = true;
  /// When false the statistics rebuild uses the scalar per-node walk
  /// instead of the columnar (block-predicted, velocity-cached) kernel.
  /// Bitwise identical either way; the flag exists so benchmarks can A/B
  /// the two flavors (bench_adapt_path). See StatsStageConfig.
  bool columnar_rebuild = true;
  /// Optional telemetry (not owned; must outlive the server). When set, the
  /// server maintains `lira.queue.*` instruments on every Receive and
  /// records the adaptation loop -- z trajectory, per-stage plan-build
  /// spans, plan shape gauges, typed events (DESIGN.md "Telemetry").
  /// nullptr disables all instrumentation at the cost of a pointer test.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Optional span tracer (not owned; must outlive the server). When set,
  /// every tick and adaptation records per-stage wall-time spans stamped
  /// with (tick, shard) -- the single server writes the driver lane; a
  /// ServerCluster additionally writes shard k's spans into lane k+1
  /// (DESIGN.md §10). nullptr costs one pointer test per stage.
  telemetry::TraceRecorder* trace = nullptr;
  /// Optional flight recorder (not owned; must outlive the server). When
  /// set, every tick appends one FlightSample per pipeline (queue depth and
  /// drops, z, lambda, utilization, node count, plan shape) to the ring, so
  /// a crash or chaos event leaves a postmortem of the last N ticks.
  telemetry::FlightRecorder* flight_recorder = nullptr;
  uint64_t seed = 1234;
  /// Optional worker pool (not owned; must outlive the server) for the
  /// adaptation path: the columnar statistics rebuild, the quad-tree build,
  /// and the GRIDREDUCE drill-down waves. Plans and statistics are bitwise
  /// identical for every thread count (and without a pool); see the
  /// determinism notes on StatsStage and GridReduceConfig.
  ThreadPool* pool = nullptr;
};

/// Single-threaded discrete-time CQ server.
class CqServer : public ServerPipeline {
 public:
  /// `policy`, `reduction` and `queries` must outlive the server. The
  /// registry may gain queries while the server runs (InstallQueries); the
  /// statistics grid refreshes its query counts at every adaptation.
  static StatusOr<CqServer> Create(const CqServerConfig& config,
                                   const LoadSheddingPolicy* policy,
                                   const UpdateReductionFunction* reduction,
                                   const QueryRegistry* queries);

  /// Points the server at a (possibly different) query registry -- the CQ
  /// workload changed. Takes effect at the next adaptation step (or an
  /// explicit Adapt()). The registry must outlive the server.
  Status InstallQueries(const QueryRegistry* queries) override;

  /// Enqueues a batch of arriving position updates (drops when full),
  /// consuming `*updates` in place (shuffled, elements moved from) so the
  /// caller can clear and reuse the buffer's capacity across ticks -- the
  /// simulator's frame loop calls this every frame. Receive (inherited)
  /// takes an owned batch.
  void ReceiveBatch(std::vector<ModelUpdate>* updates) override;

  /// Advances the server clock by dt seconds: services the queue and runs
  /// the adaptation step when the period elapses.
  Status Tick(double dt) override;

  /// Forces an adaptation step immediately (also used internally).
  Status Adapt() override;

  /// Answers an installed continual query from the TPR-tree at the server's
  /// current time. Requires maintain_index.
  StatusOr<std::vector<NodeId>> AnswerQuery(QueryId query) const;

  /// Answers an ad-hoc snapshot range query at time t >= now. Requires
  /// maintain_index.
  StatusOr<std::vector<NodeId>> AnswerRange(const Rect& range,
                                            double t) const;

  /// Answers a historical snapshot range query at a past time t. Requires
  /// record_history.
  StatusOr<std::vector<NodeId>> AnswerHistoricalRange(const Rect& range,
                                                      double t) const;

  /// The history store, or nullptr when record_history is off.
  const HistoryStore* history() const { return tracker_stage_.history(); }

  double time() const override { return time_; }
  /// Ticks processed so far (the frame stamp on trace spans).
  int64_t ticks() const { return tick_; }
  double z() const override { return optimizer_.z(); }
  const SheddingPlan& plan() const override { return optimizer_.plan(); }
  const PositionTracker& tracker() const { return tracker_stage_.tracker(); }
  const UpdateQueue& queue() const { return ingest_.queue(); }
  const StatisticsGrid& stats() const { return stats_stage_.grid(); }

  /// Cumulative time spent building plans (seconds) and number of builds,
  /// for the server-side-cost experiments.
  double total_plan_build_seconds() const override {
    return optimizer_.total_plan_build_seconds();
  }
  int64_t plan_builds() const override { return optimizer_.plan_builds(); }
  int64_t updates_applied() const override {
    return tracker_stage_.updates_applied();
  }

  std::optional<Point> BelievedPositionAt(NodeId id,
                                          double t) const override {
    return tracker_stage_.tracker().PredictAt(id, t);
  }
  void FillBelievedInto(NodeId begin, int64_t n, double t, double* out_x,
                        double* out_y, uint8_t* known) const override {
    tracker_stage_.tracker().PredictSpan(begin, n, t, /*fallback_x=*/nullptr,
                                         /*fallback_y=*/nullptr, out_x, out_y,
                                         known);
  }
  size_t queue_size() const override { return ingest_.queue().size(); }
  int64_t queue_arrivals() const override {
    return ingest_.queue().total_arrivals();
  }
  int64_t queue_dropped() const override {
    return ingest_.queue().total_dropped();
  }
  bool records_history() const override { return history() != nullptr; }
  std::vector<NodeId> HistoricalRangeAt(const Rect& range,
                                        double t) const override;
  std::optional<Point> HistoricalPositionAt(NodeId id,
                                            double t) const override;
  int64_t history_bytes() const override;

 private:
  CqServer(const CqServerConfig& config, const LoadSheddingPolicy* policy,
           const UpdateReductionFunction* reduction,
           const QueryRegistry* queries, IngestStage ingest,
           TrackerStage tracker_stage, StatsStage stats_stage,
           OptimizerStage optimizer);

  /// Query margin in force: explicit config or the reduction's delta_max.
  double QueryMargin() const;

  /// Appends one end-of-tick FlightSample (flight recorder configured).
  void RecordFlightSample();

  CqServerConfig config_;
  const LoadSheddingPolicy* policy_;
  const UpdateReductionFunction* reduction_;
  const QueryRegistry* queries_;
  IngestStage ingest_;
  TrackerStage tracker_stage_;
  StatsStage stats_stage_;
  OptimizerStage optimizer_;
  double time_ = 0.0;
  int64_t tick_ = 0;
  double next_adaptation_;
};

}  // namespace lira

#endif  // LIRA_SERVER_CQ_SERVER_H_
