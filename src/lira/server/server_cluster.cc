#include "lira/server/server_cluster.h"

#include <algorithm>
#include <string>
#include <utility>

namespace lira {
namespace {

/// Shard k's random stream: golden-ratio mixing keeps streams disjoint
/// while shard 0 keeps the un-mixed seed, so an S=1 cluster consumes
/// exactly the random sequence a plain CqServer would.
uint64_t ShardSeed(uint64_t seed, int32_t shard) {
  return seed ^ (static_cast<uint64_t>(shard) * 0x9e3779b97f4a7c15ULL);
}

/// Shard instrument namespace. The id rides in the name segment
/// ("lira.shard3.queue.depth") so the metric registry stays a flat
/// string-keyed map; the Prometheus exporter re-extracts it as a proper
/// `shard="3"` label (telemetry/exposition.h).
std::string ShardPrefix(int32_t shard) {
  return "lira.shard" + std::to_string(shard);
}

}  // namespace

ServerCluster::ServerCluster(const ServerClusterConfig& config,
                             const LoadSheddingPolicy* policy,
                             const UpdateReductionFunction* reduction,
                             const QueryRegistry* queries, ShardMap shard_map,
                             std::vector<Shard> shards,
                             StatsStage merged_stats, OptimizerStage optimizer,
                             int32_t pool_threads)
    : config_(config),
      policy_(policy),
      reduction_(reduction),
      queries_(queries),
      shard_map_(std::move(shard_map)),
      shards_(std::move(shards)),
      merged_stats_(std::move(merged_stats)),
      optimizer_(std::move(optimizer)),
      pool_(pool_threads),
      next_adaptation_(config.server.adaptation_period),
      owner_of_(config.server.num_nodes, -1) {
  // The coordinator-side adaptation phases (shard-grid merge, quad build,
  // GRIDREDUCE waves) reuse the shard fan-out pool once the fan-out has
  // returned; shard stages themselves must stay pool-free (no nesting).
  optimizer_.set_pool(&pool_);
  if (config_.server.telemetry != nullptr) {
    telemetry::MetricRegistry& metrics = config_.server.telemetry->metrics();
    arrivals_counter_ = metrics.GetCounter("lira.queue.arrivals");
    dropped_counter_ = metrics.GetCounter("lira.queue.dropped");
    rebalance_epochs_counter_ =
        metrics.GetCounter("lira.cluster.rebalance.epochs");
    rebalance_columns_counter_ =
        metrics.GetCounter("lira.cluster.rebalance.columns_moved");
    rebalance_migrated_counter_ =
        metrics.GetCounter("lira.cluster.rebalance.nodes_migrated");
    shard_nodes_gauges_.reserve(shards_.size());
    for (int32_t k = 0; k < num_shards(); ++k) {
      shard_nodes_gauges_.push_back(
          metrics.GetGauge(ShardPrefix(k) + ".stats.nodes"));
    }
  }
  RebuildSubQueries();
}

double ServerCluster::QueryMargin() const {
  return config_.server.query_margin >= 0.0 ? config_.server.query_margin
                                            : reduction_->delta_max();
}

StatusOr<std::unique_ptr<ServerCluster>> ServerCluster::Create(
    const ServerClusterConfig& config, const LoadSheddingPolicy* policy,
    const UpdateReductionFunction* reduction, const QueryRegistry* queries) {
  const CqServerConfig& server = config.server;
  if (policy == nullptr || reduction == nullptr || queries == nullptr) {
    return InvalidArgumentError("policy/reduction/queries must be non-null");
  }
  if (server.num_nodes <= 0) {
    return InvalidArgumentError("num_nodes must be positive");
  }
  if (server.service_rate <= 0.0) {
    return InvalidArgumentError("service_rate must be positive");
  }
  if (server.adaptation_period <= 0.0) {
    return InvalidArgumentError("adaptation_period must be positive");
  }
  if (!server.auto_throttle &&
      (server.fixed_z < 0.0 || server.fixed_z > 1.0)) {
    return InvalidArgumentError("fixed_z must be in [0, 1]");
  }
  if (server.stats_sample_fraction <= 0.0 ||
      server.stats_sample_fraction > 1.0) {
    return InvalidArgumentError("stats_sample_fraction must be in (0, 1]");
  }
  if (config.threads < 0) {
    return InvalidArgumentError("threads must be >= 0");
  }
  if (config.rebalance_stride < 0) {
    return InvalidArgumentError("rebalance_stride must be >= 0 (0 = off)");
  }
  if (config.rebalance_stride > 0 && config.rebalance_max_moves < 1) {
    return InvalidArgumentError(
        "rebalance_max_moves must be >= 1 when rebalancing is enabled");
  }
  auto shard_map =
      ShardMap::Create(server.world, server.alpha, config.shards);
  if (!shard_map.ok()) {
    return shard_map.status();
  }

  const int32_t num_shards = config.shards;
  // Global resources split evenly: queue slots round up so S shard queues
  // always cover the global capacity B; the service rate divides exactly
  // (mu/S per shard, so S=1 keeps the service-credit float math bitwise).
  const size_t shard_capacity =
      (server.queue_capacity + static_cast<size_t>(num_shards) - 1) /
      static_cast<size_t>(num_shards);
  const double shard_rate = server.service_rate / num_shards;

  std::vector<Shard> shards;
  shards.reserve(num_shards);
  for (int32_t k = 0; k < num_shards; ++k) {
    const uint64_t seed = ShardSeed(server.seed, k);
    const std::string prefix = ShardPrefix(k);

    IngestStageConfig ingest_config;
    ingest_config.queue_capacity = shard_capacity;
    ingest_config.service_rate = shard_rate;
    ingest_config.seed = seed;
    ingest_config.metric_prefix = prefix;
    // Shard Receive/rebuild sections run concurrently; EventSink
    // implementations are single-threaded, so shards touch only atomic
    // counters/gauges and the coordinator emits the (serial) events.
    ingest_config.emit_events = false;
    ingest_config.telemetry = server.telemetry;
    auto ingest = IngestStage::Create(ingest_config);
    if (!ingest.ok()) {
      return ingest.status();
    }

    auto tracker = TrackerStage::Create(
        server.num_nodes, server.maintain_index, server.record_history);
    if (!tracker.ok()) {
      return tracker.status();
    }

    StatsStageConfig stats_config;
    stats_config.num_nodes = server.num_nodes;
    stats_config.world = server.world;
    stats_config.alpha = server.alpha;
    stats_config.stats_sample_fraction = server.stats_sample_fraction;
    stats_config.incremental_stats = server.incremental_stats;
    stats_config.owned_only = true;
    stats_config.seed = seed ^ 0x57a75ULL;
    stats_config.metric_prefix = prefix;
    stats_config.telemetry = server.telemetry;
    auto stats = StatsStage::Create(stats_config);
    if (!stats.ok()) {
      return stats.status();
    }

    shards.push_back(Shard{*std::move(ingest), *std::move(tracker),
                           *std::move(stats), {}, {}, 0});
  }

  // The coordinator's merged grid; its query-count cache plays the role
  // the single server's grid cache does (counted once here, refreshed
  // only when the registry or margin changes).
  StatsStageConfig merged_config;
  merged_config.num_nodes = server.num_nodes;
  merged_config.world = server.world;
  merged_config.alpha = server.alpha;
  merged_config.stats_sample_fraction = server.stats_sample_fraction;
  merged_config.incremental_stats = server.incremental_stats;
  merged_config.seed = server.seed ^ 0x57a75ULL;
  // The coordinator's own instruments live under `lira.coord.*`; the shard
  // stages own the `lira.shard<k>.*` rebuild instruments, so the merged
  // stage no longer has to run blind just to avoid name collisions.
  merged_config.metric_prefix = "lira.coord";
  merged_config.telemetry = server.telemetry;
  auto merged = StatsStage::Create(merged_config);
  if (!merged.ok()) {
    return merged.status();
  }
  const double margin = server.query_margin >= 0.0 ? server.query_margin
                                                   : reduction->delta_max();
  merged->RebuildQueries(*queries, margin);

  OptimizerStageConfig optimizer_config;
  optimizer_config.queue_capacity =
      static_cast<int64_t>(server.queue_capacity);
  optimizer_config.service_rate = server.service_rate;
  optimizer_config.adaptation_period = server.adaptation_period;
  optimizer_config.auto_throttle = server.auto_throttle;
  optimizer_config.fixed_z = server.fixed_z;
  optimizer_config.telemetry = server.telemetry;
  auto optimizer = OptimizerStage::Create(optimizer_config, server.world,
                                          reduction->delta_min());
  if (!optimizer.ok()) {
    return optimizer.status();
  }

  const int32_t pool_threads = std::min(
      config.threads > 0 ? config.threads : ThreadPool::DefaultThreads(),
      num_shards);
  return std::unique_ptr<ServerCluster>(new ServerCluster(
      config, policy, reduction, queries, *std::move(shard_map),
      std::move(shards), *std::move(merged), *std::move(optimizer),
      pool_threads));
}

Status ServerCluster::InstallQueries(const QueryRegistry* queries) {
  if (queries == nullptr) {
    return InvalidArgumentError("queries must be non-null");
  }
  queries_ = queries;
  merged_stats_.InvalidateQueryCache();
  RebuildSubQueries();
  return OkStatus();
}

Rect ServerCluster::ExpandedStrip(int32_t shard) const {
  const double margin = QueryMargin();
  const Rect strip = shard_map_.ShardRect(shard);
  return Rect{strip.min_x - margin, strip.min_y - margin,
              strip.max_x + margin, strip.max_y + margin};
}

void ServerCluster::RebuildSubQueries() {
  std::vector<Rect> strips;
  strips.reserve(static_cast<size_t>(num_shards()));
  for (int32_t k = 0; k < num_shards(); ++k) {
    strips.push_back(shard_map_.ShardRect(k));
  }
  sub_queries_.Build(*queries_, strips, QueryMargin());
}

void ServerCluster::ReceiveBatch(std::vector<ModelUpdate>* updates) {
  const auto arrived = static_cast<int64_t>(updates->size());
  telemetry::TraceRecorder* tr = config_.server.trace;
  telemetry::TraceLane* driver_lane =
      tr != nullptr ? tr->lane(telemetry::TraceRecorder::kDriverLane)
                    : nullptr;
  // Route serially in batch order (stable: each shard sees its updates in
  // the order the batch carried them, exactly the sub-sequence a single
  // server would have admitted them in), then admit per shard in parallel.
  {
    telemetry::ScopedSpan route_span(tr, driver_lane, "ingest.route", tick_,
                                     -1, time_);
    route_span.set_value(static_cast<double>(arrived));
    for (Shard& shard : shards_) {
      shard.route.clear();
    }
    for (ModelUpdate& update : *updates) {
      shards_[shard_map_.ShardFor(update.model.origin)].route.push_back(
          std::move(update));
    }
    updates->clear();
  }
  // Each worker writes only its own shard's trace lane (grain 1 ==
  // one shard per chunk), so lanes stay single-writer.
  pool_.ParallelFor(
      0, num_shards(), 1, [&](int32_t /*chunk*/, int64_t begin, int64_t end) {
        for (int64_t k = begin; k < end; ++k) {
          Shard& shard = shards_[k];
          const auto shard_id = static_cast<int32_t>(k);
          telemetry::ScopedSpan span(
              tr,
              tr != nullptr
                  ? tr->lane(telemetry::TraceRecorder::LaneForShard(shard_id))
                  : nullptr,
              "ingest.receive", tick_, shard_id, time_);
          span.set_value(static_cast<double>(shard.route.size()));
          shard.last_dropped = shard.ingest.Receive(&shard.route, time_);
        }
      });
  if (config_.server.telemetry != nullptr) {
    int64_t dropped = 0;
    for (const Shard& shard : shards_) {
      dropped += shard.last_dropped;
    }
    arrivals_counter_->Increment(arrived);
    if (dropped > 0) {
      dropped_counter_->Increment(dropped);
      config_.server.telemetry->Emit(telemetry::EventKind::kQueueOverflow,
                                     "lira.queue.dropped", time_,
                                     static_cast<double>(dropped),
                                     static_cast<double>(queue_size()));
    }
  }
}

Status ServerCluster::Tick(double dt) {
  if (dt <= 0.0) {
    return InvalidArgumentError("dt must be positive");
  }
  time_ += dt;
  ++tick_;
  telemetry::TraceRecorder* tr = config_.server.trace;
  // Service + apply per shard in parallel: each shard touches only its own
  // queue/tracker/history plus relaxed-atomic counters -- and its own
  // trace lane (k + 1), so span recording needs no synchronization.
  pool_.ParallelFor(
      0, num_shards(), 1, [&](int32_t /*chunk*/, int64_t begin, int64_t end) {
        for (int64_t k = begin; k < end; ++k) {
          Shard& shard = shards_[k];
          const auto shard_id = static_cast<int32_t>(k);
          telemetry::TraceLane* lane =
              tr != nullptr
                  ? tr->lane(telemetry::TraceRecorder::LaneForShard(shard_id))
                  : nullptr;
          shard.applied.clear();
          telemetry::ScopedSpan service_span(tr, lane, "ingest.service",
                                             tick_, shard_id, time_);
          const std::vector<ModelUpdate> served = shard.ingest.Service(dt);
          service_span.set_value(static_cast<double>(served.size()));
          service_span.Stop();
          telemetry::ScopedSpan apply_span(tr, lane, "tracker.apply", tick_,
                                           shard_id, time_);
          apply_span.set_value(static_cast<double>(served.size()));
          for (const ModelUpdate& update : served) {
            shard.tracker.Apply(update);
            shard.applied.push_back(update.node_id);
          }
        }
      });
  {
    telemetry::ScopedSpan handoff_span(
        tr,
        tr != nullptr ? tr->lane(telemetry::TraceRecorder::kDriverLane)
                      : nullptr,
        "tracker.handoffs", tick_, -1, time_);
    ProcessHandoffs();
  }
  if (time_ + 1e-9 >= next_adaptation_) {
    LIRA_RETURN_IF_ERROR(Adapt());
    next_adaptation_ += config_.server.adaptation_period;
  }
  if (config_.server.flight_recorder != nullptr) {
    RecordFlightSamples();
  }
  return OkStatus();
}

void ServerCluster::RecordFlightSamples() {
  telemetry::FlightRecorder* recorder = config_.server.flight_recorder;
  for (int32_t k = 0; k < num_shards(); ++k) {
    const Shard& shard = shards_[k];
    telemetry::FlightSample sample;
    sample.tick = tick_;
    sample.time = time_;
    sample.shard = k;
    sample.queue_depth = static_cast<int64_t>(shard.ingest.queue().size());
    sample.queue_dropped = shard.ingest.queue().total_dropped();
    sample.queue_arrivals = shard.ingest.queue().total_arrivals();
    sample.z = optimizer_.z();
    sample.nodes = static_cast<int64_t>(shard.stats.grid().TotalNodes());
    recorder->Record(sample);
  }
  telemetry::FlightSample coord;
  coord.tick = tick_;
  coord.time = time_;
  coord.shard = -1;
  coord.queue_depth = static_cast<int64_t>(queue_size());
  coord.queue_dropped = queue_dropped();
  coord.queue_arrivals = queue_arrivals();
  coord.z = optimizer_.z();
  coord.lambda = optimizer_.last_lambda();
  coord.utilization = optimizer_.last_utilization();
  coord.nodes = static_cast<int64_t>(merged_stats_.grid().TotalNodes());
  coord.plan_regions = static_cast<int32_t>(optimizer_.plan().NumRegions());
  coord.plan_min_delta = optimizer_.plan().MinDelta();
  coord.plan_max_delta = optimizer_.plan().MaxDelta();
  recorder->Record(coord);
}

void ServerCluster::ProcessHandoffs() {
  // Serial, in shard order, so the outcome is independent of worker timing.
  // A node applied by two shards in the same tick (it crossed a boundary
  // between reports) ends up owned by the highest-indexed applier; its
  // latest model at the loser is retracted, matching what a single server
  // would keep only approximately -- the plan optimizer never sees a node
  // twice, which is the invariant that matters.
  for (int32_t k = 0; k < num_shards(); ++k) {
    for (const NodeId id : shards_[k].applied) {
      const int32_t previous = owner_of_[id];
      if (previous >= 0 && previous != k) {
        shards_[previous].stats.ForgetNode(id);
        shards_[previous].tracker.Forget(id);
      }
      owner_of_[id] = k;
      shards_[k].stats.NoteOwned(id);
    }
  }
}

Status ServerCluster::Adapt() {
  telemetry::TelemetrySink* t = config_.server.telemetry;
  telemetry::ScopedTimer adapt_timer(t, "lira.adapt.total_seconds", time_);
  telemetry::TraceRecorder* tr = config_.server.trace;
  telemetry::TraceLane* driver_lane =
      tr != nullptr ? tr->lane(telemetry::TraceRecorder::kDriverLane)
                    : nullptr;
  // Rebalance phase (DESIGN.md §12): every R-th adaptation re-splits the
  // strip boundaries from the *previous* adaptation's merged grid -- the
  // only cross-shard state every thread count agrees on -- then migrates
  // ownership serially before this adaptation's rebuild re-establishes the
  // migrated grid contributions at their new shards. The first adaptation
  // is skipped (no merged occupancy yet).
  if (config_.rebalance_stride > 0 && num_shards() > 1 && adaptations_ > 0 &&
      adaptations_ % config_.rebalance_stride == 0) {
    telemetry::ScopedSpan rebalance_span(tr, driver_lane,
                                         "cluster.rebalance", tick_, -1,
                                         time_);
    MaybeRebalance();
    rebalance_span.set_value(static_cast<double>(shard_map_.epoch()));
  }
  {
    telemetry::ScopedSpan throttle_span(tr, driver_lane, "optimizer.throttle",
                                        tick_, -1, time_);
    if (config_.server.auto_throttle) {
      // THROTLOOP sees the *global* arrival window against the global
      // service rate -- sharding must not change the control loop.
      int64_t window_arrivals = 0;
      int64_t window_dropped = 0;
      for (Shard& shard : shards_) {
        window_arrivals += shard.ingest.queue().window_arrivals();
        window_dropped += shard.ingest.queue().window_dropped();
      }
      optimizer_.UpdateThrottle(window_arrivals, window_dropped, time_);
      for (Shard& shard : shards_) {
        shard.ingest.ResetWindow();
      }
    } else {
      optimizer_.FixedThrottle(time_);
    }
    throttle_span.set_value(optimizer_.z());
  }
  {
    telemetry::ScopedTimer stats_timer(t, "lira.adapt.stats_rebuild_seconds",
                                       time_);
    // Per-shard rebuilds run in parallel (disjoint grids and trackers,
    // disjoint trace lanes), then the coordinator merges in shard order:
    // integer accumulators make the merged grid bitwise equal to a single
    // grid fed the same observations, independent of thread count.
    pool_.ParallelFor(
        0, num_shards(), 1,
        [&](int32_t /*chunk*/, int64_t begin, int64_t end) {
          for (int64_t k = begin; k < end; ++k) {
            const auto shard_id = static_cast<int32_t>(k);
            telemetry::ScopedSpan span(
                tr,
                tr != nullptr
                    ? tr->lane(
                          telemetry::TraceRecorder::LaneForShard(shard_id))
                    : nullptr,
                "stats.rebuild", tick_, shard_id, time_);
            shards_[k].stats.RebuildNodes(shards_[k].tracker.tracker(),
                                          time_);
            span.set_value(shards_[k].stats.grid().TotalNodes());
          }
        });
    telemetry::ScopedSpan merge_span(tr, driver_lane, "stats.merge", tick_,
                                     -1, time_);
    telemetry::ScopedTimer merge_timer(t, "lira.adapt.merge_seconds", time_);
    // Column-partitioned tree reduction over the shard grids' integer node
    // accumulators (AssignNodeSum) replaces the serial per-shard Merge
    // loop; integer addition keeps the result bitwise identical to it.
    // Query counts stay untouched: shard grids never count queries (the
    // merged stage owns them), so the old loop only ever added FP zeros.
    std::vector<const StatisticsGrid*> parts;
    parts.reserve(static_cast<size_t>(num_shards()));
    for (int32_t k = 0; k < num_shards(); ++k) {
      parts.push_back(&shards_[k].stats.grid());
      if (t != nullptr) {
        shard_nodes_gauges_[k]->Set(shards_[k].stats.grid().TotalNodes());
      }
    }
    LIRA_RETURN_IF_ERROR(
        merged_stats_.mutable_grid()->AssignNodeSum(parts, &pool_));
    merge_timer.Stop();
    {
      telemetry::ScopedTimer query_timer(t, "lira.adapt.query_rebuild_seconds",
                                         time_);
      telemetry::ScopedSpan query_span(tr, driver_lane, "stats.query_rebuild",
                                       tick_, -1, time_);
      merged_stats_.RebuildQueries(*queries_, QueryMargin());
    }
    merge_span.set_value(merged_stats_.grid().TotalNodes());
  }
  Status built;
  {
    telemetry::ScopedSpan plan_span(tr, driver_lane, "optimizer.plan_build",
                                    tick_, -1, time_);
    built = optimizer_.BuildPlan(*policy_, merged_stats_.grid(), *reduction_,
                                 time_);
    plan_span.set_value(static_cast<double>(optimizer_.plan().NumRegions()));
  }
  // The new plan is what every shard (and the encoders) sees from here on.
  telemetry::RecordInstant(tr, driver_lane, "plan.broadcast", tick_, -1,
                           time_,
                           static_cast<double>(optimizer_.plan().NumRegions()));
  ++adaptations_;
  return built;
}

double ServerCluster::SpanImbalance(
    const std::vector<int64_t>& column_load) const {
  int64_t total = 0;
  int64_t max_span = 0;
  for (int32_t k = 0; k < num_shards(); ++k) {
    int64_t span = 0;
    for (int32_t c = shard_map_.ColumnBegin(k); c < shard_map_.ColumnEnd(k);
         ++c) {
      span += column_load[c];
    }
    total += span;
    max_span = std::max(max_span, span);
  }
  if (total == 0) {
    return 0.0;
  }
  return static_cast<double>(max_span) * num_shards() /
         static_cast<double>(total);
}

void ServerCluster::MaybeRebalance() {
  std::vector<int64_t> column_load;
  merged_stats_.grid().ColumnNodeCounts(&column_load);
  const double before = SpanImbalance(column_load);
  const int32_t moved =
      shard_map_.Rebalance(column_load, config_.rebalance_max_moves);
  if (moved == 0) {
    return;
  }
  const double after = SpanImbalance(column_load);
  const int64_t migrated = MigrateOwnership();
  ++rebalances_;
  nodes_migrated_ += migrated;
  RebuildSubQueries();
  if (config_.server.telemetry != nullptr) {
    rebalance_epochs_counter_->Increment(1);
    rebalance_columns_counter_->Increment(moved);
    rebalance_migrated_counter_->Increment(migrated);
    config_.server.telemetry->Emit(
        telemetry::EventKind::kCounter, "lira.cluster.rebalance", time_,
        static_cast<double>(moved), static_cast<double>(migrated));
  }
  if (config_.server.flight_recorder != nullptr) {
    telemetry::RebalanceRecord record;
    record.tick = tick_;
    record.time = time_;
    record.epoch = shard_map_.epoch();
    record.columns_moved = moved;
    record.nodes_migrated = migrated;
    record.imbalance_before = before;
    record.imbalance_after = after;
    config_.server.flight_recorder->RecordRebalance(record);
  }
}

int64_t ServerCluster::MigrateOwnership() {
  // Serial, ascending node id: the same Forget/NoteOwned handoff path the
  // per-tick ownership transfers use, so grids stay exactly a union of
  // owned cells and Merge stays integer-exact across epochs. The adopting
  // tracker restores the model without counting it as an applied update;
  // its grid contribution is re-established by this adaptation's rebuild.
  int64_t migrated = 0;
  for (NodeId id = 0; id < config_.server.num_nodes; ++id) {
    const int32_t previous = owner_of_[id];
    if (previous < 0) {
      continue;
    }
    const auto model = shards_[previous].tracker.ModelOf(id);
    if (!model.has_value()) {
      continue;
    }
    const int32_t next = shard_map_.ShardFor(model->origin);
    if (next == previous) {
      continue;
    }
    shards_[previous].stats.ForgetNode(id);
    shards_[previous].tracker.Forget(id);
    shards_[next].tracker.Adopt(ModelUpdate{id, *model});
    shards_[next].stats.NoteOwned(id);
    owner_of_[id] = next;
    ++migrated;
  }
  return migrated;
}

ClusterHealth ServerCluster::HealthSnapshot() const {
  ClusterHealth health;
  health.time = time_;
  health.tick = tick_;
  health.num_shards = num_shards();
  health.z = optimizer_.z();
  // Ownership counts come from the live owner map (always current, unlike
  // the per-shard grids which refresh only at adaptations).
  std::vector<int64_t> owned(static_cast<size_t>(num_shards()), 0);
  for (const int32_t owner : owner_of_) {
    if (owner >= 0) {
      ++owned[static_cast<size_t>(owner)];
    }
  }
  health.map_epoch = shard_map_.epoch();
  health.rebalances = rebalances_;
  health.nodes_migrated = nodes_migrated_;
  health.shards.reserve(owned.size());
  for (int32_t k = 0; k < num_shards(); ++k) {
    ShardHealth shard;
    shard.shard = k;
    shard.nodes_owned = owned[static_cast<size_t>(k)];
    shard.queue_depth =
        static_cast<int64_t>(shards_[k].ingest.queue().size());
    shard.queue_arrivals = shards_[k].ingest.queue().total_arrivals();
    shard.queue_dropped = shards_[k].ingest.queue().total_dropped();
    shard.tracker_bytes =
        static_cast<int64_t>(shards_[k].tracker.tracker().MemoryBytes());
    shard.col_begin = shard_map_.ColumnBegin(k);
    shard.col_end = shard_map_.ColumnEnd(k);
    health.shards.push_back(shard);
    health.total_nodes += shard.nodes_owned;
    health.max_shard_nodes =
        std::max(health.max_shard_nodes, shard.nodes_owned);
    health.tracker_bytes += shard.tracker_bytes;
  }
  health.bytes_per_node =
      static_cast<double>(health.tracker_bytes) /
      std::max<int32_t>(1, config_.server.num_nodes);
  health.mean_shard_nodes =
      static_cast<double>(health.total_nodes) / num_shards();
  health.imbalance_ratio =
      health.mean_shard_nodes > 0.0
          ? static_cast<double>(health.max_shard_nodes) /
                health.mean_shard_nodes
          : 0.0;
  return health;
}

std::optional<Point> ServerCluster::BelievedPositionAt(NodeId id,
                                                       double t) const {
  if (id < 0 || id >= config_.server.num_nodes) {
    return std::nullopt;
  }
  const int32_t owner = owner_of_[id];
  if (owner < 0) {
    return std::nullopt;
  }
  return shards_[owner].tracker.tracker().PredictAt(id, t);
}

size_t ServerCluster::queue_size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.ingest.queue().size();
  }
  return total;
}

int64_t ServerCluster::queue_arrivals() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.ingest.queue().total_arrivals();
  }
  return total;
}

int64_t ServerCluster::queue_dropped() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.ingest.queue().total_dropped();
  }
  return total;
}

int64_t ServerCluster::updates_applied() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.tracker.updates_applied();
  }
  return total;
}

bool ServerCluster::ClipIsExact(int32_t shard, const Rect& bounds) const {
  // The clipped sub-query is exact iff every believed position the shard's
  // tree can report lies inside the margin-expanded strip: min edges may
  // touch (Rect::Contains is closed below), max edges must stay strictly
  // inside (a position exactly on the expanded strip's half-open max edge
  // would escape the clipped rect). The root TPBR conservatively bounds
  // every indexed position, so this check is sufficient; when a node has
  // drifted further than the margin, the caller falls back to the full
  // range -- correctness never depends on the margin being large enough.
  const Rect expanded = ExpandedStrip(shard);
  return bounds.min_x >= expanded.min_x && bounds.min_y >= expanded.min_y &&
         bounds.max_x < expanded.max_x && bounds.max_y < expanded.max_y;
}

Status ServerCluster::AppendShardRange(
    int32_t shard, const Rect& eval, double t,
    std::vector<std::vector<NodeId>>* lists) const {
  auto ids = shards_[shard].tracker.RangeAt(eval, t);
  if (!ids.ok()) {
    return ids.status();
  }
  std::vector<NodeId> owned;
  owned.reserve(ids->size());
  for (const NodeId id : *ids) {
    // A shard's index may briefly retain a handed-off node; ownership
    // filtering keeps every id at exactly one shard, making the per-shard
    // lists disjoint and the union merge duplicate-free.
    if (owner_of_[id] == shard) {
      owned.push_back(id);
    }
  }
  std::sort(owned.begin(), owned.end());
  lists->push_back(std::move(owned));
  return OkStatus();
}

StatusOr<std::vector<NodeId>> ServerCluster::AnswerRange(const Rect& range,
                                                         double t) const {
  if (!config_.server.maintain_index) {
    return FailedPreconditionError("server index maintenance is disabled");
  }
  if (t + 1e-9 < time_) {
    return InvalidArgumentError(
        "snapshot time is in the past; use the history store for "
        "historical queries");
  }
  std::vector<std::vector<NodeId>> lists;
  lists.reserve(static_cast<size_t>(num_shards()));
  for (int32_t k = 0; k < num_shards(); ++k) {
    const auto bounds = shards_[k].tracker.BoundsAt(t);
    if (!bounds.has_value() || !range.IntersectsClosed(*bounds)) {
      continue;  // no indexed node of this shard can fall in the range
    }
    Rect eval = range;
    if (ClipIsExact(k, *bounds)) {
      const Rect expanded = ExpandedStrip(k);
      if (!range.IntersectsClosed(expanded)) {
        continue;  // all of k's nodes are inside the strip, away from range
      }
      eval = range.Intersection(expanded);
    }
    LIRA_RETURN_IF_ERROR(AppendShardRange(k, eval, t, &lists));
  }
  return MergeSortedUnion(lists);
}

StatusOr<std::vector<NodeId>> ServerCluster::AnswerQuery(
    QueryId query) const {
  if (!config_.server.maintain_index) {
    return FailedPreconditionError("server index maintenance is disabled");
  }
  if (query < 0 || query >= queries_->size()) {
    return InvalidArgumentError("unknown query id: " +
                                std::to_string(query));
  }
  const Rect& range = queries_->Get(query).range;
  const double t = time_;
  std::vector<std::vector<NodeId>> lists;
  lists.reserve(static_cast<size_t>(num_shards()));
  for (int32_t k = 0; k < num_shards(); ++k) {
    const auto bounds = shards_[k].tracker.BoundsAt(t);
    if (!bounds.has_value() || !range.IntersectsClosed(*bounds)) {
      continue;
    }
    Rect eval = range;
    if (ClipIsExact(k, *bounds)) {
      // Shard-local evaluation through the installed sub-query: when the
      // query is not installed here, no in-strip node can match.
      const ShardSubQuery* sub = sub_queries_.Find(k, query);
      if (sub == nullptr) {
        continue;
      }
      eval = sub->clipped;
    }
    LIRA_RETURN_IF_ERROR(AppendShardRange(k, eval, t, &lists));
  }
  return MergeSortedUnion(lists);
}

std::optional<Point> ServerCluster::HistoricalPositionAt(NodeId id,
                                                         double t) const {
  if (!config_.server.record_history || id < 0 ||
      id >= config_.server.num_nodes) {
    return std::nullopt;
  }
  // The shard holding the freshest record at t has the model in force; a
  // node's reports land at whichever shard its region mapped to at the
  // time, so every visited shard holds a disjoint slice of its history.
  int32_t best_shard = -1;
  double best_t0 = 0.0;
  for (int32_t k = 0; k < num_shards(); ++k) {
    const auto t0 = shards_[k].tracker.history()->LastReportBefore(id, t);
    if (t0.has_value() && (best_shard < 0 || *t0 > best_t0)) {
      best_shard = k;
      best_t0 = *t0;
    }
  }
  if (best_shard < 0) {
    return std::nullopt;
  }
  return shards_[best_shard].tracker.history()->PositionAt(id, t);
}

std::vector<NodeId> ServerCluster::HistoricalRangeAt(const Rect& range,
                                                     double t) const {
  std::vector<NodeId> out;
  if (!config_.server.record_history) {
    return out;
  }
  for (NodeId id = 0; id < config_.server.num_nodes; ++id) {
    const auto position = HistoricalPositionAt(id, t);
    if (position.has_value() && range.Contains(*position)) {
      out.push_back(id);
    }
  }
  return out;
}

StatusOr<std::vector<NodeId>> ServerCluster::AnswerHistoricalRange(
    const Rect& range, double t) const {
  if (!config_.server.record_history) {
    return FailedPreconditionError("history recording is disabled");
  }
  if (t > time_ + 1e-9) {
    return InvalidArgumentError("historical time is in the future");
  }
  return HistoricalRangeAt(range, t);
}

int64_t ServerCluster::history_bytes() const {
  int64_t total = 0;
  for (const Shard& shard : shards_) {
    const HistoryStore* store = shard.tracker.history();
    total += store != nullptr ? store->ApproxBytes() : 0;
  }
  return total;
}

}  // namespace lira
