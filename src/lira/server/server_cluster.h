// Region-sharded CQ server cluster (DESIGN.md §9).
//
// S shard pipelines -- each an IngestStage + TrackerStage + StatsStage
// triple with its own bounded queue (capacity ceil(B/S)), service rate
// mu/S, and seed stream -- fed by a spatial ShardMap that routes each update
// by its model origin to the shard owning that statistics-grid column
// strip. A coordinator owns the single OptimizerStage: at each adaptation
// it merges the per-shard StatisticsGrids into one global grid
// (StatisticsGrid::Merge, integer-exact) and builds ONE global SheddingPlan
// under the global budget z * n * f(delta) and the fairness constraint, so
// shard boundaries never fragment the optimizer's view.
//
// Node ownership follows the updates: when a shard applies an update for a
// node previously owned elsewhere, the coordinator retracts the old
// shard's tracker model and grid contribution (handoff, processed serially
// in shard order every tick). Histories are retained at every shard a node
// visited; historical reconstruction picks the shard holding the freshest
// record at the probed time.
//
// Determinism contract: all cross-shard work (routing, handoff, merge,
// throttle-window summation) is ordered by shard index, every shard's
// random stream is a pure function of (config seed, shard index), and the
// parallel sections touch only per-shard state plus atomic instruments.
// Hence results are bitwise identical for any worker thread count, and an
// S=1 cluster is bitwise identical to a plain CqServer with the same
// config (asserted in tests/server/server_cluster_test and
// sim/simulation_test).

#ifndef LIRA_SERVER_SERVER_CLUSTER_H_
#define LIRA_SERVER_SERVER_CLUSTER_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/parallel.h"
#include "lira/common/status.h"
#include "lira/core/policy.h"
#include "lira/core/shedding_plan.h"
#include "lira/core/statistics_grid.h"
#include "lira/cq/query_registry.h"
#include "lira/cq/sharded_queries.h"
#include "lira/mobility/position.h"
#include "lira/motion/linear_model.h"
#include "lira/motion/update_reduction.h"
#include "lira/server/cluster_health.h"
#include "lira/server/cq_server.h"
#include "lira/server/ingest_stage.h"
#include "lira/server/optimizer_stage.h"
#include "lira/server/server_pipeline.h"
#include "lira/server/shard_map.h"
#include "lira/server/stats_stage.h"
#include "lira/server/tracker_stage.h"
#include "lira/telemetry/telemetry.h"

namespace lira {

struct ServerClusterConfig {
  /// Global parameters; queue_capacity, service_rate and seed are divided /
  /// mixed across shards (see server_cluster.cc). The telemetry sink, when
  /// set, additionally gains per-shard `lira.shard<k>.*` instruments (the
  /// shard id is a label dimension the Prometheus exporter folds back into
  /// `{shard="k"}`, telemetry/exposition.h) and coordinator-owned
  /// `lira.coord.*` instruments for the merged statistics stage. The trace
  /// recorder, when set, needs shards + 1 lanes: shard k records its
  /// parallel-section spans into lane k + 1 and the coordinator into lane 0.
  CqServerConfig server;
  /// Number of spatial shards S, in [1, alpha].
  int32_t shards = 1;
  /// Worker threads for the per-shard fan-out sections; 0 = min(hardware
  /// concurrency, shards). Results are identical for any value.
  int32_t threads = 0;
  /// Shard-map rebalancing stride R (DESIGN.md §12): every R adaptation
  /// windows the coordinator re-splits the grid columns across shards from
  /// the merged grid's integer per-column occupancy. 0 (default) disables
  /// rebalancing entirely -- the map stays the initial even split and every
  /// observable output is unchanged from earlier versions. The decision
  /// consumes only merged integer state, so any thread count produces the
  /// identical map sequence.
  int32_t rebalance_stride = 0;
  /// Hysteresis bound: max columns each strip boundary may travel per
  /// rebalance epoch.
  int32_t rebalance_max_moves = 2;
};

/// The cluster facade; drives S shard pipelines behind the same interface
/// a single CqServer implements. Not movable (owns a ThreadPool).
class ServerCluster : public ServerPipeline {
 public:
  static StatusOr<std::unique_ptr<ServerCluster>> Create(
      const ServerClusterConfig& config, const LoadSheddingPolicy* policy,
      const UpdateReductionFunction* reduction,
      const QueryRegistry* queries);

  ServerCluster(const ServerCluster&) = delete;
  ServerCluster& operator=(const ServerCluster&) = delete;

  Status InstallQueries(const QueryRegistry* queries) override;
  void ReceiveBatch(std::vector<ModelUpdate>* updates) override;
  Status Tick(double dt) override;
  Status Adapt() override;

  double time() const override { return time_; }
  double z() const override { return optimizer_.z(); }
  const SheddingPlan& plan() const override { return optimizer_.plan(); }
  std::optional<Point> BelievedPositionAt(NodeId id,
                                          double t) const override;
  size_t queue_size() const override;
  int64_t queue_arrivals() const override;
  int64_t queue_dropped() const override;
  int64_t updates_applied() const override;
  int64_t plan_builds() const override { return optimizer_.plan_builds(); }
  double total_plan_build_seconds() const override {
    return optimizer_.total_plan_build_seconds();
  }
  bool records_history() const override {
    return config_.server.record_history;
  }
  std::vector<NodeId> HistoricalRangeAt(const Rect& range,
                                        double t) const override;
  std::optional<Point> HistoricalPositionAt(NodeId id,
                                            double t) const override;
  int64_t history_bytes() const override;

  /// Ad-hoc snapshot range query at t >= now, evaluated shard-locally:
  /// each overlapped shard searches its own TPR-tree with the range clipped
  /// to its margin-expanded strip (falling back to the full range when its
  /// tree's bounding box has drifted outside the strip -- exactness guard,
  /// DESIGN.md §12), and the per-shard id-sorted membership lists are
  /// unioned by sorted merge. Requires maintain_index. Results are filtered
  /// by current ownership so every id appears exactly once, and are bitwise
  /// identical to the unsharded CqServer's answer on the same belief state.
  StatusOr<std::vector<NodeId>> AnswerRange(const Rect& range,
                                            double t) const;

  /// Evaluates a *registered* query (by id) at the current time through its
  /// installed shard-local sub-queries (the clipped rects precomputed at
  /// registration / rebalance). Same result contract as AnswerRange on the
  /// query's range.
  StatusOr<std::vector<NodeId>> AnswerQuery(QueryId query) const;

  /// Historical snapshot range query at a past time t (Status-checked
  /// variant of HistoricalRangeAt). Requires record_history.
  StatusOr<std::vector<NodeId>> AnswerHistoricalRange(const Rect& range,
                                                      double t) const;

  /// Point-in-time cluster health: per-shard occupancy / queue state plus
  /// load-skew statistics (max/mean owned nodes and their imbalance ratio).
  /// Serializable via WriteHealthJson / WriteHealthPrometheus
  /// (cluster_health.h). O(num_nodes + shards); not for per-tick use.
  ClusterHealth HealthSnapshot() const;

  /// Ticks processed so far (the frame stamp on trace spans).
  int64_t ticks() const { return tick_; }

  int32_t num_shards() const {
    return static_cast<int32_t>(shards_.size());
  }
  const ShardMap& shard_map() const { return shard_map_; }
  /// Rebalance accounting (0 / epoch 0 while rebalance_stride == 0).
  int64_t map_epoch() const { return shard_map_.epoch(); }
  int64_t rebalances() const { return rebalances_; }
  int64_t nodes_migrated() const { return nodes_migrated_; }
  /// The installed shard-local sub-queries, for tests and diagnostics.
  const ShardedQueryTable& sub_queries() const { return sub_queries_; }
  /// The coordinator's merged grid (valid after an adaptation).
  const StatisticsGrid& stats() const { return merged_stats_.grid(); }
  /// One shard's own grid / queue, for tests and diagnostics.
  const StatisticsGrid& shard_stats(int32_t shard) const {
    return shards_[shard].stats.grid();
  }
  const UpdateQueue& shard_queue(int32_t shard) const {
    return shards_[shard].ingest.queue();
  }

 private:
  struct Shard {
    IngestStage ingest;
    TrackerStage tracker;
    StatsStage stats;
    /// Node ids applied this tick (handoff scratch, reused).
    std::vector<NodeId> applied;
    /// Batch routing scratch, reused across ticks.
    std::vector<ModelUpdate> route;
    /// Receive fan-out scratch: drops admitted this batch.
    int64_t last_dropped = 0;
  };

  ServerCluster(const ServerClusterConfig& config,
                const LoadSheddingPolicy* policy,
                const UpdateReductionFunction* reduction,
                const QueryRegistry* queries, ShardMap shard_map,
                std::vector<Shard> shards, StatsStage merged_stats,
                OptimizerStage optimizer, int32_t pool_threads);

  double QueryMargin() const;
  /// Shard k's strip expanded by the query margin on every side.
  Rect ExpandedStrip(int32_t shard) const;
  /// Reinstalls every registered query as per-shard clipped sub-queries
  /// against the current strip boundaries (called on registry change and
  /// after every rebalance epoch).
  void RebuildSubQueries();
  /// Appends `shard`'s sorted membership list for the search rect `eval`
  /// (the full query range or its strip clip) at time t.
  Status AppendShardRange(int32_t shard, const Rect& eval, double t,
                          std::vector<std::vector<NodeId>>* lists) const;
  /// True when every node indexed at `shard` provably lies inside its
  /// margin-expanded strip at time t, i.e. the clipped sub-query is exact.
  /// `bounds` is the shard tree's root box at t.
  bool ClipIsExact(int32_t shard, const Rect& bounds) const;
  /// The deterministic rebalance step (start of every R-th adaptation):
  /// re-splits the map from the merged grid's column occupancy, migrates
  /// ownership through the Forget/Adopt handoff path in ascending node
  /// order, reinstalls sub-queries, and records flight/telemetry.
  void MaybeRebalance();
  /// Moves every owned node whose origin column changed shards; returns the
  /// migration count.
  int64_t MigrateOwnership();
  /// max/mean per-shard load under the *current* strip boundaries, from
  /// per-column loads (1.0 = balanced, 0 when total load is 0).
  double SpanImbalance(const std::vector<int64_t>& column_load) const;
  /// Serial post-tick pass: ownership transfers for this tick's applied
  /// updates, in shard order.
  void ProcessHandoffs();
  /// Appends end-of-tick FlightSamples, serially in shard order (so ring
  /// contents are deterministic), then one coordinator sample (shard -1).
  void RecordFlightSamples();

  ServerClusterConfig config_;
  const LoadSheddingPolicy* policy_;
  const UpdateReductionFunction* reduction_;
  const QueryRegistry* queries_;
  ShardMap shard_map_;
  std::vector<Shard> shards_;
  /// Coordinator-owned: the merged global grid (+ query-count cache).
  StatsStage merged_stats_;
  OptimizerStage optimizer_;
  ThreadPool pool_;
  double time_ = 0.0;
  int64_t tick_ = 0;
  double next_adaptation_;
  /// Current owning shard per node; -1 until the first applied update.
  std::vector<int32_t> owner_of_;
  /// Adaptations completed (the rebalance stride counts these).
  int64_t adaptations_ = 0;
  /// Cumulative rebalance accounting.
  int64_t rebalances_ = 0;
  int64_t nodes_migrated_ = 0;
  /// Registered queries clipped per shard, aligned with the current map
  /// epoch and registry.
  ShardedQueryTable sub_queries_;
  /// Cluster-level instruments (sums over shards), resolved once.
  telemetry::Counter* arrivals_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::Counter* rebalance_epochs_counter_ = nullptr;
  telemetry::Counter* rebalance_columns_counter_ = nullptr;
  telemetry::Counter* rebalance_migrated_counter_ = nullptr;
  /// Per-shard node-count gauges, set after each adaptation's rebuild.
  std::vector<telemetry::Gauge*> shard_nodes_gauges_;
};

}  // namespace lira

#endif  // LIRA_SERVER_SERVER_CLUSTER_H_
