// Pipeline stage 1: bounded-queue admission and rate-paced service.
//
// Owns the UpdateQueue (random-order admission, drop accounting, windowed
// rate measurement for THROTLOOP) plus the fractional service credit that
// converts a continuous service rate into whole updates per tick. The stage
// also owns the `<prefix>.queue.*` instruments so shards of a ServerCluster
// report under their own `lira.shard<k>` namespace.

#ifndef LIRA_SERVER_INGEST_STAGE_H_
#define LIRA_SERVER_INGEST_STAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lira/common/status.h"
#include "lira/motion/linear_model.h"
#include "lira/server/update_queue.h"
#include "lira/telemetry/telemetry.h"

namespace lira {

struct IngestStageConfig {
  /// Input queue capacity B.
  size_t queue_capacity = 500;
  /// Service rate mu, updates/second.
  double service_rate = 1000.0;
  /// Seed of the queue's admission shuffle.
  uint64_t seed = 1234;
  /// Instrument namespace: "<metric_prefix>.queue.*". The facade server
  /// uses "lira"; cluster shard k uses "lira.shard<k>".
  std::string metric_prefix = "lira";
  /// When false the stage never emits kQueueOverflow events, only counter /
  /// gauge updates. Cluster shards run Receive concurrently and EventSink
  /// implementations are single-threaded, while Counter/Gauge are atomics.
  bool emit_events = true;
  /// Optional telemetry (not owned; must outlive the stage).
  telemetry::TelemetrySink* telemetry = nullptr;
};

/// Admission + service pacing. Not thread-safe; distinct stages are
/// independent (per-shard instruments are distinct registry entries).
class IngestStage {
 public:
  static StatusOr<IngestStage> Create(const IngestStageConfig& config);

  /// Admits one tick's batch, consuming `*updates` in place (shuffled,
  /// elements moved from). Returns how many were dropped.
  int64_t Receive(std::vector<ModelUpdate>* updates, double now);

  /// Advances the service clock by dt seconds and dequeues the updates the
  /// service rate affords (FIFO order; fractional capacity carries over).
  std::vector<ModelUpdate> Service(double dt);

  /// Resets the queue's THROTLOOP measurement window.
  void ResetWindow() { queue_.ResetWindow(); }

  const UpdateQueue& queue() const { return queue_; }
  double service_rate() const { return service_rate_; }

 private:
  IngestStage(const IngestStageConfig& config, UpdateQueue queue);

  UpdateQueue queue_;
  double service_rate_;
  double service_credit_ = 0.0;
  bool emit_events_;
  telemetry::TelemetrySink* telemetry_;
  /// Instruments resolved once at construction (registry lookups are map
  /// accesses; Receive runs every tick). Null when telemetry is off.
  telemetry::Counter* arrivals_counter_ = nullptr;
  telemetry::Counter* dropped_counter_ = nullptr;
  telemetry::Gauge* depth_gauge_ = nullptr;
  telemetry::Gauge* high_watermark_gauge_ = nullptr;
  /// Owned storage for the overflow event name (Emit takes a view).
  std::string dropped_event_name_;
};

}  // namespace lira

#endif  // LIRA_SERVER_INGEST_STAGE_H_
