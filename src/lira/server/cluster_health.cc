#include "lira/server/cluster_health.h"

#include <cstdio>
#include <string>

#include "lira/telemetry/exposition.h"

namespace lira {
namespace {

void AppendDouble(std::string* out, double v) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  out->append(buffer);
}

void AppendPromSample(std::string* out, const char* family,
                      const std::string& labels, double value) {
  out->append(family);
  if (!labels.empty()) {
    out->push_back('{');
    out->append(labels);
    out->push_back('}');
  }
  out->push_back(' ');
  AppendDouble(out, value);
  out->push_back('\n');
}

}  // namespace

void WriteHealthJson(const ClusterHealth& health, std::ostream& out) {
  std::string text = "{\"time\":";
  AppendDouble(&text, health.time);
  text += ",\"tick\":" + std::to_string(health.tick);
  text += ",\"num_shards\":" + std::to_string(health.num_shards);
  text += ",\"z\":";
  AppendDouble(&text, health.z);
  text += ",\"total_nodes\":" + std::to_string(health.total_nodes);
  text += ",\"max_shard_nodes\":" + std::to_string(health.max_shard_nodes);
  text += ",\"mean_shard_nodes\":";
  AppendDouble(&text, health.mean_shard_nodes);
  text += ",\"imbalance_ratio\":";
  AppendDouble(&text, health.imbalance_ratio);
  text += ",\"tracker_bytes\":" + std::to_string(health.tracker_bytes);
  text += ",\"bytes_per_node\":";
  AppendDouble(&text, health.bytes_per_node);
  text += ",\"map_epoch\":" + std::to_string(health.map_epoch);
  text += ",\"rebalances\":" + std::to_string(health.rebalances);
  text += ",\"nodes_migrated\":" + std::to_string(health.nodes_migrated);
  text += ",\"shards\":[";
  for (size_t i = 0; i < health.shards.size(); ++i) {
    const ShardHealth& shard = health.shards[i];
    if (i > 0) {
      text.push_back(',');
    }
    text += "{\"shard\":" + std::to_string(shard.shard);
    text += ",\"nodes_owned\":" + std::to_string(shard.nodes_owned);
    text += ",\"queue_depth\":" + std::to_string(shard.queue_depth);
    text += ",\"queue_arrivals\":" + std::to_string(shard.queue_arrivals);
    text += ",\"queue_dropped\":" + std::to_string(shard.queue_dropped);
    text += ",\"tracker_bytes\":" + std::to_string(shard.tracker_bytes);
    text += ",\"col_begin\":" + std::to_string(shard.col_begin);
    text += ",\"col_end\":" + std::to_string(shard.col_end);
    text.push_back('}');
  }
  text += "]}";
  out << text;
}

void WriteHealthPrometheus(const ClusterHealth& health,
                           const telemetry::MetricRegistry* metrics,
                           std::ostream& out) {
  std::string text;
  text.append("# TYPE lira_cluster_time gauge\n");
  AppendPromSample(&text, "lira_cluster_time", "", health.time);
  text.append("# TYPE lira_cluster_tick gauge\n");
  AppendPromSample(&text, "lira_cluster_tick", "",
                   static_cast<double>(health.tick));
  text.append("# TYPE lira_cluster_shards gauge\n");
  AppendPromSample(&text, "lira_cluster_shards", "",
                   static_cast<double>(health.num_shards));
  text.append("# TYPE lira_cluster_z gauge\n");
  AppendPromSample(&text, "lira_cluster_z", "", health.z);
  text.append("# TYPE lira_cluster_total_nodes gauge\n");
  AppendPromSample(&text, "lira_cluster_total_nodes", "",
                   static_cast<double>(health.total_nodes));
  text.append("# TYPE lira_cluster_max_shard_nodes gauge\n");
  AppendPromSample(&text, "lira_cluster_max_shard_nodes", "",
                   static_cast<double>(health.max_shard_nodes));
  text.append("# TYPE lira_cluster_mean_shard_nodes gauge\n");
  AppendPromSample(&text, "lira_cluster_mean_shard_nodes", "",
                   health.mean_shard_nodes);
  text.append("# TYPE lira_cluster_imbalance_ratio gauge\n");
  AppendPromSample(&text, "lira_cluster_imbalance_ratio", "",
                   health.imbalance_ratio);
  text.append("# TYPE lira_cluster_tracker_bytes gauge\n");
  AppendPromSample(&text, "lira_cluster_tracker_bytes", "",
                   static_cast<double>(health.tracker_bytes));
  text.append("# TYPE lira_cluster_bytes_per_node gauge\n");
  AppendPromSample(&text, "lira_cluster_bytes_per_node", "",
                   health.bytes_per_node);
  text.append("# TYPE lira_cluster_map_epoch gauge\n");
  AppendPromSample(&text, "lira_cluster_map_epoch", "",
                   static_cast<double>(health.map_epoch));
  text.append("# TYPE lira_cluster_rebalances counter\n");
  AppendPromSample(&text, "lira_cluster_rebalances", "",
                   static_cast<double>(health.rebalances));
  text.append("# TYPE lira_cluster_nodes_migrated counter\n");
  AppendPromSample(&text, "lira_cluster_nodes_migrated", "",
                   static_cast<double>(health.nodes_migrated));
  text.append("# TYPE lira_cluster_shard_nodes_owned gauge\n");
  for (const ShardHealth& shard : health.shards) {
    AppendPromSample(&text, "lira_cluster_shard_nodes_owned",
                     "shard=\"" + std::to_string(shard.shard) + "\"",
                     static_cast<double>(shard.nodes_owned));
  }
  text.append("# TYPE lira_cluster_shard_queue_depth gauge\n");
  for (const ShardHealth& shard : health.shards) {
    AppendPromSample(&text, "lira_cluster_shard_queue_depth",
                     "shard=\"" + std::to_string(shard.shard) + "\"",
                     static_cast<double>(shard.queue_depth));
  }
  text.append("# TYPE lira_cluster_shard_queue_dropped counter\n");
  for (const ShardHealth& shard : health.shards) {
    AppendPromSample(&text, "lira_cluster_shard_queue_dropped",
                     "shard=\"" + std::to_string(shard.shard) + "\"",
                     static_cast<double>(shard.queue_dropped));
  }
  text.append("# TYPE lira_cluster_shard_tracker_bytes gauge\n");
  for (const ShardHealth& shard : health.shards) {
    AppendPromSample(&text, "lira_cluster_shard_tracker_bytes",
                     "shard=\"" + std::to_string(shard.shard) + "\"",
                     static_cast<double>(shard.tracker_bytes));
  }
  text.append("# TYPE lira_cluster_shard_col_begin gauge\n");
  for (const ShardHealth& shard : health.shards) {
    AppendPromSample(&text, "lira_cluster_shard_col_begin",
                     "shard=\"" + std::to_string(shard.shard) + "\"",
                     static_cast<double>(shard.col_begin));
  }
  text.append("# TYPE lira_cluster_shard_col_end gauge\n");
  for (const ShardHealth& shard : health.shards) {
    AppendPromSample(&text, "lira_cluster_shard_col_end",
                     "shard=\"" + std::to_string(shard.shard) + "\"",
                     static_cast<double>(shard.col_end));
  }
  out << text;
  if (metrics != nullptr) {
    telemetry::WritePrometheus(*metrics, out);
  }
}

}  // namespace lira
