#include "lira/server/stats_stage.h"

#include <utility>

#include "lira/common/check.h"

namespace lira {

StatsStage::StatsStage(const StatsStageConfig& config, StatisticsGrid grid)
    : world_(config.world),
      stats_sample_fraction_(config.stats_sample_fraction),
      incremental_stats_(config.incremental_stats),
      owned_only_(config.owned_only),
      grid_(std::move(grid)),
      stats_rng_(config.seed),
      stats_cell_of_(config.num_nodes, -1),
      stats_speed_of_(config.num_nodes, 0.0),
      owned_words_(config.owned_only
                       ? (static_cast<size_t>(config.num_nodes) + 63) / 64
                       : 0,
                   0) {
  if (config.telemetry != nullptr) {
    cells_dirtied_counter_ = config.telemetry->metrics().GetCounter(
        config.metric_prefix + ".stats.cells_dirtied");
  }
}

StatusOr<StatsStage> StatsStage::Create(const StatsStageConfig& config) {
  if (config.num_nodes <= 0) {
    return InvalidArgumentError("num_nodes must be positive");
  }
  if (config.stats_sample_fraction <= 0.0 ||
      config.stats_sample_fraction > 1.0) {
    return InvalidArgumentError("stats_sample_fraction must be in (0, 1]");
  }
  auto grid = StatisticsGrid::Create(config.world, config.alpha);
  if (!grid.ok()) {
    return grid.status();
  }
  return StatsStage(config, *std::move(grid));
}

void StatsStage::NoteOwned(NodeId id) {
  if (!owned_only_) {
    return;
  }
  LIRA_DCHECK(id >= 0 &&
              static_cast<size_t>(id) < stats_cell_of_.size());
  owned_words_[static_cast<size_t>(id) / 64] |= uint64_t{1}
                                                << (static_cast<size_t>(id) %
                                                    64);
}

void StatsStage::ForgetNode(NodeId id) {
  LIRA_DCHECK(id >= 0 &&
              static_cast<size_t>(id) < stats_cell_of_.size());
  if (stats_cell_of_[id] >= 0) {
    grid_.RemoveNodeAt(stats_cell_of_[id], stats_speed_of_[id]);
    stats_cell_of_[id] = -1;
    stats_speed_of_[id] = 0.0;
  }
  if (owned_only_) {
    owned_words_[static_cast<size_t>(id) / 64] &=
        ~(uint64_t{1} << (static_cast<size_t>(id) % 64));
  }
}

int64_t StatsStage::RelocateNode(const PositionTracker& tracker, NodeId id,
                                 double now) {
  const auto position = tracker.PredictAt(id, now);
  int32_t new_cell = -1;
  double new_speed = 0.0;
  if (position.has_value()) {
    const Point where = world_.Clamp(*position);
    new_cell = grid_.CellIndexOf(where);
    new_speed = tracker.BelievedSpeed(id);
  }
  const int32_t old_cell = stats_cell_of_[id];
  if (old_cell == new_cell &&
      (new_cell < 0 || StatisticsGrid::QuantizeSpeed(stats_speed_of_[id]) ==
                           StatisticsGrid::QuantizeSpeed(new_speed))) {
    return 0;
  }
  int64_t dirtied = 0;
  if (old_cell >= 0) {
    grid_.RemoveNodeAt(old_cell, stats_speed_of_[id]);
    ++dirtied;
  }
  if (new_cell >= 0) {
    grid_.AddNodeAt(new_cell, new_speed);
    if (new_cell != old_cell) {
      ++dirtied;
    }
  }
  stats_cell_of_[id] = new_cell;
  stats_speed_of_[id] = new_speed;
  return dirtied;
}

void StatsStage::RebuildNodesIncremental(const PositionTracker& tracker,
                                         double now) {
  // Delta maintenance: relocate only the contributions whose cell or
  // quantized speed changed since the last rebuild. The grid's integer
  // accumulators make the result bitwise identical to ClearNodes() + full
  // repopulation, and at fraction 1.0 neither path draws from stats_rng_,
  // so the two paths are interchangeable mid-run.
  int64_t dirtied = 0;
  if (owned_only_) {
    // Ascending set bits == ascending ids; unmarked ids are no-ops in the
    // all-ids loop (no model, no previous contribution), so the two
    // iteration orders produce the same accumulator sequence.
    for (size_t w = 0; w < owned_words_.size(); ++w) {
      uint64_t word = owned_words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        word &= word - 1;
        dirtied += RelocateNode(
            tracker, static_cast<NodeId>(w * 64 + static_cast<size_t>(bit)),
            now);
      }
    }
  } else {
    for (NodeId id = 0; id < tracker.num_nodes(); ++id) {
      dirtied += RelocateNode(tracker, id, now);
    }
  }
  if (cells_dirtied_counter_ != nullptr) {
    cells_dirtied_counter_->Increment(dirtied);
  }
}

void StatsStage::RebuildNodes(const PositionTracker& tracker, double now) {
  if (IncrementalEnabled()) {
    RebuildNodesIncremental(tracker, now);
    return;
  }
  grid_.ClearNodes();
  const double fraction = stats_sample_fraction_;
  const double weight = 1.0 / fraction;
  // Every id draws from the RNG (sampled mode) whether or not it has a
  // model, keeping the stream independent of ownership and report state.
  for (NodeId id = 0; id < tracker.num_nodes(); ++id) {
    if (fraction < 1.0 && !stats_rng_.Bernoulli(fraction)) {
      continue;
    }
    const auto position = tracker.PredictAt(id, now);
    if (!position.has_value()) {
      continue;
    }
    const Point where = world_.Clamp(*position);
    const double speed = tracker.BelievedSpeed(id);
    // Unbiased scaling: each sampled node stands for 1/fraction nodes.
    for (double mass = weight; mass > 1e-9; mass -= 1.0) {
      // AddNode has unit mass; add floor(weight) copies plus a Bernoulli
      // remainder so expectations match exactly.
      if (mass >= 1.0 || stats_rng_.Bernoulli(mass)) {
        grid_.AddNode(where, speed);
      }
    }
  }
}

void StatsStage::RebuildQueries(const QueryRegistry& queries, double margin) {
  if (query_stats_valid_ && query_stats_size_ == queries.size() &&
      query_stats_margin_ == margin) {
    return;  // counts already in the grid are current
  }
  grid_.ClearQueries();
  grid_.AddQueries(queries, margin);
  query_stats_valid_ = true;
  query_stats_size_ = queries.size();
  query_stats_margin_ = margin;
}

}  // namespace lira
