#include "lira/server/stats_stage.h"

#include <algorithm>
#include <utility>

#include "lira/common/check.h"
#include "lira/common/kernels.h"

namespace lira {
namespace {

/// Columnar rebuild block size: ids stream through the prediction kernel
/// this many lanes at a time (bounds the arena spans and keeps the block
/// resident in cache), and a pooled rebuild never cuts chunks finer.
constexpr int64_t kColumnarBlock = 8192;

}  // namespace

StatsStage::StatsStage(const StatsStageConfig& config, StatisticsGrid grid)
    : world_(config.world),
      stats_sample_fraction_(config.stats_sample_fraction),
      incremental_stats_(config.incremental_stats),
      owned_only_(config.owned_only),
      columnar_rebuild_(config.columnar_rebuild),
      pool_(config.pool),
      grid_(std::move(grid)),
      stats_rng_(config.seed),
      stats_cell_of_(config.num_nodes, -1),
      stats_speed_of_(config.num_nodes, 0.0),
      stats_speed_q_of_(config.num_nodes, 0),
      stats_vel_x_(config.columnar_rebuild ? config.num_nodes : 0, 0.0),
      stats_vel_y_(config.columnar_rebuild ? config.num_nodes : 0, 0.0),
      owned_words_(config.owned_only
                       ? (static_cast<size_t>(config.num_nodes) + 63) / 64
                       : 0,
                   0) {
  if (config.telemetry != nullptr) {
    cells_dirtied_counter_ = config.telemetry->metrics().GetCounter(
        config.metric_prefix + ".stats.cells_dirtied");
  }
}

StatusOr<StatsStage> StatsStage::Create(const StatsStageConfig& config) {
  if (config.num_nodes <= 0) {
    return InvalidArgumentError("num_nodes must be positive");
  }
  if (config.stats_sample_fraction <= 0.0 ||
      config.stats_sample_fraction > 1.0) {
    return InvalidArgumentError("stats_sample_fraction must be in (0, 1]");
  }
  auto grid = StatisticsGrid::Create(config.world, config.alpha);
  if (!grid.ok()) {
    return grid.status();
  }
  return StatsStage(config, *std::move(grid));
}

void StatsStage::NoteOwned(NodeId id) {
  if (!owned_only_) {
    return;
  }
  LIRA_DCHECK(id >= 0 &&
              static_cast<size_t>(id) < stats_cell_of_.size());
  owned_words_[static_cast<size_t>(id) / 64] |= uint64_t{1}
                                                << (static_cast<size_t>(id) %
                                                    64);
}

void StatsStage::ForgetNode(NodeId id) {
  LIRA_DCHECK(id >= 0 &&
              static_cast<size_t>(id) < stats_cell_of_.size());
  if (stats_cell_of_[id] >= 0) {
    grid_.RemoveNodeAt(stats_cell_of_[id], stats_speed_of_[id]);
    stats_cell_of_[id] = -1;
    stats_speed_of_[id] = 0.0;
    stats_speed_q_of_[id] = 0;
  }
  if (owned_only_) {
    owned_words_[static_cast<size_t>(id) / 64] &=
        ~(uint64_t{1} << (static_cast<size_t>(id) % 64));
  }
}

int64_t StatsStage::RelocateNode(const PositionTracker& tracker, NodeId id,
                                 double now) {
  const auto position = tracker.PredictAt(id, now);
  int32_t new_cell = -1;
  double new_speed = 0.0;
  if (position.has_value()) {
    const Point where = world_.Clamp(*position);
    new_cell = grid_.CellIndexOf(where);
    new_speed = tracker.BelievedSpeed(id);
  }
  const int32_t old_cell = stats_cell_of_[id];
  if (old_cell == new_cell &&
      (new_cell < 0 || StatisticsGrid::QuantizeSpeed(stats_speed_of_[id]) ==
                           StatisticsGrid::QuantizeSpeed(new_speed))) {
    return 0;
  }
  int64_t dirtied = 0;
  if (old_cell >= 0) {
    grid_.RemoveNodeAt(old_cell, stats_speed_of_[id]);
    ++dirtied;
  }
  if (new_cell >= 0) {
    grid_.AddNodeAt(new_cell, new_speed);
    if (new_cell != old_cell) {
      ++dirtied;
    }
  }
  stats_cell_of_[id] = new_cell;
  stats_speed_of_[id] = new_speed;
  stats_speed_q_of_[id] =
      new_cell >= 0 ? StatisticsGrid::QuantizeSpeed(new_speed) : 0;
  return dirtied;
}

void StatsStage::RebuildNodesIncremental(const PositionTracker& tracker,
                                         double now) {
  // Delta maintenance: relocate only the contributions whose cell or
  // quantized speed changed since the last rebuild. The grid's integer
  // accumulators make the result bitwise identical to ClearNodes() + full
  // repopulation, and at fraction 1.0 neither path draws from stats_rng_,
  // so the two paths are interchangeable mid-run.
  int64_t dirtied = 0;
  if (owned_only_) {
    // Ascending set bits == ascending ids; unmarked ids are no-ops in the
    // all-ids loop (no model, no previous contribution), so the two
    // iteration orders produce the same accumulator sequence.
    for (size_t w = 0; w < owned_words_.size(); ++w) {
      uint64_t word = owned_words_[w];
      while (word != 0) {
        const int bit = __builtin_ctzll(word);
        word &= word - 1;
        dirtied += RelocateNode(
            tracker, static_cast<NodeId>(w * 64 + static_cast<size_t>(bit)),
            now);
      }
    }
  } else {
    for (NodeId id = 0; id < tracker.num_nodes(); ++id) {
      dirtied += RelocateNode(tracker, id, now);
    }
  }
  if (cells_dirtied_counter_ != nullptr) {
    cells_dirtied_counter_->Increment(dirtied);
  }
}

int64_t StatsStage::RelocateRange(const PositionTracker& tracker, double now,
                                  FrameArena* arena, int64_t begin,
                                  int64_t end,
                                  std::vector<CellDelta>* deltas) {
  const double* vel_x = tracker.vel_x_data();
  const double* vel_y = tracker.vel_y_data();
  arena->Reset();
  const int64_t span = std::min<int64_t>(end - begin, kColumnarBlock);
  auto px = arena->AllocSpan<double>(static_cast<size_t>(span));
  auto py = arena->AllocSpan<double>(static_cast<size_t>(span));
  auto known = arena->AllocSpan<uint8_t>(static_cast<size_t>(span));
  auto cells = arena->AllocSpan<int32_t>(static_cast<size_t>(span));
  auto skip = arena->AllocSpan<uint8_t>(static_cast<size_t>(span));
  int64_t dirtied = 0;
  for (int64_t block = begin; block < end; block += kColumnarBlock) {
    const int64_t n = std::min<int64_t>(kColumnarBlock, end - block);
    tracker.PredictSpan(static_cast<NodeId>(block), n, now, nullptr, nullptr,
                        px, py, known);
    // The LocateCells kernel clamps internally and Rect::Clamp is
    // idempotent, so locating the raw predicted points matches the scalar
    // path's Clamp-then-CellIndexOf bit-for-bit; unknown lanes come back -1.
    grid_.LocateCells(n, px, py, known, cells);
    // Vectorized fast-path test: same cell, same velocity bits -> the grid
    // already holds this node's exact contribution. (A -1 unknown lane
    // never sets skip: cell >= 0 fails.)
    kernels::RelocateSkipMask(n, cells, stats_cell_of_.data() + block,
                              vel_x + block, vel_y + block,
                              stats_vel_x_.data() + block,
                              stats_vel_y_.data() + block, skip);
    // How far ahead the direct-mutation loop prefetches grid lines: far
    // enough to cover the lanes between two relocations, near enough that
    // the lines survive until use.
    constexpr int64_t kPrefetchAhead = 16;
    const bool direct = deltas == nullptr;
    for (int64_t i = 0; i < n; ++i) {
      const int64_t j = i + kPrefetchAhead;
      if (direct && j < n && skip[j] == 0) {
        const int32_t ahead_old = stats_cell_of_[block + j];
        if (ahead_old >= 0) {
          grid_.PrefetchCellAcc(ahead_old);
        }
        if (cells[j] >= 0) {
          grid_.PrefetchCellAcc(cells[j]);
        }
      }
      if (skip[i] != 0) {
        continue;
      }
      const auto id = static_cast<NodeId>(block + i);
      const int32_t old_cell = stats_cell_of_[id];
      int32_t new_cell = -1;
      int64_t new_q = 0;
      double new_speed = 0.0;
      if (known[i] != 0) {
        new_cell = cells[i];
        if (old_cell >= 0 && vel_x[id] == stats_vel_x_[id] &&
            vel_y[id] == stats_vel_y_[id]) {
          // Velocity bits unchanged since the stored contribution:
          // BelievedSpeed would hypot the same operands, so the stored
          // speed (and its cached quantization) is bitwise the recomputed
          // one. The mask already skipped the same-cell case, so this is
          // always a pure cell move.
          new_speed = stats_speed_of_[id];
          new_q = stats_speed_q_of_[id];
        } else {
          new_speed = tracker.BelievedSpeed(id);
          new_q = StatisticsGrid::QuantizeSpeed(new_speed);
          stats_vel_x_[id] = vel_x[id];
          stats_vel_y_[id] = vel_y[id];
        }
      }
      const int64_t old_q = old_cell >= 0 ? stats_speed_q_of_[id] : 0;
      if (old_cell == new_cell && (new_cell < 0 || old_q == new_q)) {
        continue;
      }
      if (deltas != nullptr) {
        if (old_cell >= 0) {
          deltas->push_back({old_cell, -1, -old_q});
          ++dirtied;
        }
        if (new_cell >= 0) {
          deltas->push_back({new_cell, 1, new_q});
          if (new_cell != old_cell) {
            ++dirtied;
          }
        }
      } else {
        if (old_cell >= 0) {
          grid_.RemoveNodeQAt(old_cell, old_q);
          ++dirtied;
        }
        if (new_cell >= 0) {
          grid_.AddNodeQAt(new_cell, new_q);
          if (new_cell != old_cell) {
            ++dirtied;
          }
        }
      }
      stats_cell_of_[id] = new_cell;
      stats_speed_of_[id] = new_speed;
      stats_speed_q_of_[id] = new_q;
    }
  }
  return dirtied;
}

void StatsStage::ApplyDeltas(const std::vector<CellDelta>& deltas) {
  // Cells per radix bucket: a bucket's slice of the two accumulator arrays
  // is 4096 * 16 bytes = 64 KiB, comfortably cache-resident while the
  // bucket's deltas replay against it.
  constexpr int32_t kBucketShift = 12;
  // Below this size the partitioning passes cost more than the (few)
  // scattered misses they avoid.
  constexpr size_t kMinBucketed = 1 << 14;
  const int64_t cells =
      static_cast<int64_t>(grid_.alpha()) * grid_.alpha();
  if (deltas.size() < kMinBucketed || cells <= (1 << kBucketShift)) {
    for (const CellDelta& d : deltas) {
      grid_.ApplyNodeDelta(d.cell, d.count, d.speed_q);
    }
    return;
  }
  const auto buckets =
      static_cast<int32_t>((cells + (1 << kBucketShift) - 1) >> kBucketShift);
  delta_bucket_offsets_.assign(static_cast<size_t>(buckets) + 1, 0);
  for (const CellDelta& d : deltas) {
    ++delta_bucket_offsets_[(d.cell >> kBucketShift) + 1];
  }
  for (int32_t b = 0; b < buckets; ++b) {
    delta_bucket_offsets_[b + 1] += delta_bucket_offsets_[b];
  }
  delta_sort_scratch_.resize(deltas.size());
  for (const CellDelta& d : deltas) {
    delta_sort_scratch_[delta_bucket_offsets_[d.cell >> kBucketShift]++] = d;
  }
  for (const CellDelta& d : delta_sort_scratch_) {
    grid_.ApplyNodeDelta(d.cell, d.count, d.speed_q);
  }
}

void StatsStage::RebuildNodesColumnar(const PositionTracker& tracker,
                                      double now) {
  const int64_t n = tracker.num_nodes();
  const bool pooled = pool_ != nullptr && pool_->num_threads() > 1 &&
                      n >= 2 * kColumnarBlock;
  int64_t dirtied = 0;
  if (!pooled) {
    if (rebuild_arenas_.empty()) {
      rebuild_arenas_.resize(1);
    }
    dirtied = RelocateRange(tracker, now, &rebuild_arenas_[0], 0, n, nullptr);
  } else {
    const auto workers = static_cast<size_t>(pool_->num_threads());
    if (rebuild_arenas_.size() < workers) {
      rebuild_arenas_.resize(workers);
    }
    rebuild_deltas_.resize(workers);
    rebuild_dirtied_.assign(workers, 0);
    for (auto& list : rebuild_deltas_) {
      list.clear();
    }
    // Workers own disjoint id ranges: per-node state writes are private,
    // and grid mutations queue into the worker's delta list. Applying the
    // lists in chunk order after the join reproduces the serial grid
    // bit-for-bit -- the deltas are matched integer remove/add pairs, which
    // commute (StatisticsGrid::ApplyNodeDelta).
    pool_->ParallelFor(0, n, kColumnarBlock,
                       [&](int32_t chunk, int64_t begin, int64_t end) {
                         rebuild_dirtied_[chunk] = RelocateRange(
                             tracker, now, &rebuild_arenas_[chunk], begin,
                             end, &rebuild_deltas_[chunk]);
                       });
    for (size_t c = 0; c < workers; ++c) {
      dirtied += rebuild_dirtied_[c];
      ApplyDeltas(rebuild_deltas_[c]);
    }
  }
  if (cells_dirtied_counter_ != nullptr) {
    cells_dirtied_counter_->Increment(dirtied);
  }
}

void StatsStage::RebuildNodes(const PositionTracker& tracker, double now) {
  if (IncrementalEnabled()) {
    // The owned-only path keeps the scalar owned-bitmap iteration: shard
    // rebuilds already run inside the coordinator's shard fan-out (no pool
    // here -- ParallelFor does not nest) and touch O(owned) ids rather
    // than scanning every lane.
    if (columnar_rebuild_ && !owned_only_) {
      RebuildNodesColumnar(tracker, now);
    } else {
      RebuildNodesIncremental(tracker, now);
    }
    return;
  }
  grid_.ClearNodes();
  const double fraction = stats_sample_fraction_;
  const double weight = 1.0 / fraction;
  // Every id draws from the RNG (sampled mode) whether or not it has a
  // model, keeping the stream independent of ownership and report state.
  for (NodeId id = 0; id < tracker.num_nodes(); ++id) {
    if (fraction < 1.0 && !stats_rng_.Bernoulli(fraction)) {
      continue;
    }
    const auto position = tracker.PredictAt(id, now);
    if (!position.has_value()) {
      continue;
    }
    const Point where = world_.Clamp(*position);
    const double speed = tracker.BelievedSpeed(id);
    // Unbiased scaling: each sampled node stands for 1/fraction nodes.
    for (double mass = weight; mass > 1e-9; mass -= 1.0) {
      // AddNode has unit mass; add floor(weight) copies plus a Bernoulli
      // remainder so expectations match exactly.
      if (mass >= 1.0 || stats_rng_.Bernoulli(mass)) {
        grid_.AddNode(where, speed);
      }
    }
  }
}

void StatsStage::RebuildQueries(const QueryRegistry& queries, double margin) {
  if (query_stats_valid_ && query_stats_size_ == queries.size() &&
      query_stats_margin_ == margin) {
    return;  // counts already in the grid are current
  }
  if (query_stats_valid_ && query_stats_margin_ == margin &&
      query_stats_size_ >= 0 && queries.size() > query_stats_size_) {
    // The registry is append-only and the margin is unchanged, so only the
    // tail [counted, size) is new. Query contributions accumulate in
    // registration order, making the appended count bitwise identical to a
    // full rescan (StatisticsGrid::AddQueriesRange).
    grid_.AddQueriesRange(queries, query_stats_size_, queries.size(), margin);
#ifndef NDEBUG
    StatisticsGrid check = grid_;
    check.ClearQueries();
    check.AddQueries(queries, margin);
    LIRA_DCHECK(grid_.QueryCountsEqual(check));
#endif
  } else {
    grid_.ClearQueries();
    grid_.AddQueries(queries, margin);
  }
  query_stats_valid_ = true;
  query_stats_size_ = queries.size();
  query_stats_margin_ = margin;
}

}  // namespace lira
