#include "lira/server/update_queue.h"

#include <algorithm>
#include <utility>

namespace lira {

StatusOr<UpdateQueue> UpdateQueue::Create(size_t capacity, uint64_t seed) {
  if (capacity < 1) {
    return InvalidArgumentError("queue capacity must be >= 1");
  }
  return UpdateQueue(capacity, seed);
}

int64_t UpdateQueue::OfferAll(std::vector<ModelUpdate> updates) {
  return OfferAll(&updates);
}

int64_t UpdateQueue::OfferAll(std::vector<ModelUpdate>* updates) {
  // Fisher-Yates shuffle so tail drops pick a uniform random subset of the
  // tick's arrivals.
  for (size_t i = updates->size(); i > 1; --i) {
    const size_t j = rng_.UniformInt(i);
    std::swap((*updates)[i - 1], (*updates)[j]);
  }
  const int64_t dropped_before = queue_.dropped();
  for (ModelUpdate& update : *updates) {
    queue_.TryPush(std::move(update));
  }
  total_arrivals_ += static_cast<int64_t>(updates->size());
  window_arrivals_ += static_cast<int64_t>(updates->size());
  const int64_t dropped = queue_.dropped() - dropped_before;
  window_dropped_ += dropped;
  high_watermark_ = std::max(high_watermark_, queue_.size());
  return dropped;
}

std::vector<ModelUpdate> UpdateQueue::Drain(int64_t max_count) {
  std::vector<ModelUpdate> out;
  while (max_count-- > 0) {
    auto update = queue_.TryPop();
    if (!update.has_value()) {
      break;
    }
    out.push_back(*update);
  }
  total_served_ += static_cast<int64_t>(out.size());
  window_served_ += static_cast<int64_t>(out.size());
  return out;
}

void UpdateQueue::ResetWindow() {
  window_arrivals_ = 0;
  window_served_ = 0;
  window_dropped_ = 0;
}

}  // namespace lira
