// Historical trajectory store.
//
// The paper motivates the fairness threshold with "mobile CQ systems
// supporting historic and ad-hoc queries" (Section 3.1.1): because LIRA
// keeps *every* node tracked (just at varying accuracy), the server can
// retain the stream of accepted motion models and answer questions about
// the past -- something the distributed schemes in the related work cannot
// do. The accuracy of these answers in query-free regions is exactly what
// the fairness threshold trades off (see bench_ext_historical).
//
// The store keeps, per node, the time-ordered list of applied motion
// models; the position at a past time t is the prediction of the model in
// force at t.

#ifndef LIRA_SERVER_HISTORY_STORE_H_
#define LIRA_SERVER_HISTORY_STORE_H_

#include <atomic>
#include <cstdint>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/mobility/position.h"
#include "lira/motion/linear_model.h"

namespace lira {

/// Append-mostly per-node model history with point-in-time reconstruction.
///
/// Thread-safety: Record is safe for concurrent *disjoint* node ids (the
/// per-node lists are independent; the total-record counter is a relaxed
/// atomic). Queries must not run concurrently with records.
class HistoryStore {
 public:
  explicit HistoryStore(int32_t num_nodes);

  HistoryStore(HistoryStore&& other) noexcept
      : history_(std::move(other.history_)),
        total_records_(other.total_records_.load()) {}

  /// Records an applied update. Out-of-order records (older t0 than the
  /// node's latest) are inserted at their sorted position; a record with a
  /// duplicate t0 replaces the existing one.
  void Record(const ModelUpdate& update);

  /// The node's believed position at time t: the prediction of the model
  /// in force at t. nullopt when the node had not reported by t.
  std::optional<Point> PositionAt(NodeId id, double t) const;

  /// Reference time t0 of the model in force at t (the node's latest record
  /// with t0 <= t); nullopt when the node had not reported by t. Lets a
  /// coordinator pick, among several partial stores, the one holding the
  /// freshest model for a node (ServerCluster historical queries).
  std::optional<double> LastReportBefore(NodeId id, double t) const;

  /// Ids of nodes whose reconstructed position at time t lies in `range`
  /// (historical snapshot query; linear in the number of nodes, with a
  /// binary search per node).
  std::vector<NodeId> RangeAt(const Rect& range, double t) const;

  int32_t num_nodes() const { return static_cast<int32_t>(history_.size()); }
  int64_t total_records() const { return total_records_.load(); }
  /// Records stored for one node.
  int64_t RecordsFor(NodeId id) const;
  /// Approximate memory footprint in bytes.
  int64_t ApproxBytes() const;

 private:
  struct Record_ {
    double t0;
    Point origin;
    Vec2 velocity;
  };

  std::vector<std::vector<Record_>> history_;
  std::atomic<int64_t> total_records_{0};
};

}  // namespace lira

#endif  // LIRA_SERVER_HISTORY_STORE_H_
