// Uniform-grid spatial index over moving objects.
//
// The paper assumes a grid-based index on node positions at the CQ server
// ([9], [11] in the paper); LIRA's statistics grid can piggyback on it. The
// index maps node ids to positions, buckets them into an evenly spaced grid,
// and answers axis-aligned range queries.

#ifndef LIRA_INDEX_GRID_INDEX_H_
#define LIRA_INDEX_GRID_INDEX_H_

#include <cstdint>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"
#include "lira/mobility/position.h"

namespace lira {

/// Moving-object grid index. Positions outside the world rectangle are
/// clamped into it (vehicles live on the road network, which is inside the
/// world by construction, so clamping only guards float edge cases).
class GridIndex {
 public:
  /// `world` must be non-degenerate; `cells_per_side` >= 1. `num_nodes`
  /// fixes the id universe 0..num_nodes-1.
  static StatusOr<GridIndex> Create(const Rect& world, int32_t cells_per_side,
                                    int32_t num_nodes);

  /// Inserts or moves a node.
  void Update(NodeId id, Point position);

  /// Removes a node if present.
  void Remove(NodeId id);

  bool Contains(NodeId id) const {
    return id >= 0 && id < num_nodes() && cell_of_[id] >= 0;
  }

  /// Current position of a node; requires Contains(id).
  Point PositionOf(NodeId id) const;

  /// Ids of all nodes inside `range`, in unspecified order. Bucket order is
  /// NOT insertion order: Update/Remove compact buckets with an O(1)
  /// swap-remove, so a node's slot can change whenever any bucket mate
  /// leaves. Callers that need a canonical order must sort (SortedRangeQuery
  /// does).
  std::vector<NodeId> RangeQuery(const Rect& range) const;

  /// As above, but clears and fills `*out` instead of allocating a fresh
  /// vector -- the per-sample, per-query evaluation loop reuses one buffer
  /// across calls. Safe to call concurrently with other const methods.
  void RangeQuery(const Rect& range, std::vector<NodeId>* out) const;

  /// Number of nodes inside `range` (no allocation).
  int32_t RangeCount(const Rect& range) const;

  int32_t num_nodes() const { return static_cast<int32_t>(cell_of_.size()); }
  int32_t size() const { return size_; }
  int32_t cells_per_side() const { return cells_per_side_; }
  const Rect& world() const { return world_; }

 private:
  GridIndex(const Rect& world, int32_t cells_per_side, int32_t num_nodes);

  int32_t CellIndexFor(Point p) const;

  Rect world_;
  int32_t cells_per_side_;
  double cell_w_;
  double cell_h_;
  /// Swap-removes node `id` from its current bucket in O(1) via slot_of_.
  void RemoveFromBucket(NodeId id);

  std::vector<std::vector<NodeId>> cells_;  ///< node ids per cell
  std::vector<int32_t> cell_of_;            ///< node -> cell (-1 = absent)
  std::vector<int32_t> slot_of_;            ///< node -> index in its bucket
  std::vector<Point> position_of_;
  int32_t size_ = 0;
};

}  // namespace lira

#endif  // LIRA_INDEX_GRID_INDEX_H_
