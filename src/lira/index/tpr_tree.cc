#include "lira/index/tpr_tree.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <utility>

#include "lira/common/check.h"

namespace lira {

Rect Tpbr::AtTime(double t) const {
  const double dt = std::max(0.0, t - t_ref);
  return Rect{min_x + min_vx * dt, min_y + min_vy * dt, max_x + max_vx * dt,
              max_y + max_vy * dt};
}

Tpbr Tpbr::ForModel(const LinearMotionModel& model) {
  Tpbr box;
  box.t_ref = model.t0;
  box.min_x = box.max_x = model.origin.x;
  box.min_y = box.max_y = model.origin.y;
  box.min_vx = box.max_vx = model.velocity.x;
  box.min_vy = box.max_vy = model.velocity.y;
  return box;
}

Tpbr Tpbr::RebasedTo(double t) const {
  LIRA_DCHECK(t >= t_ref);
  Tpbr out = *this;
  const Rect at = AtTime(t);
  out.t_ref = t;
  out.min_x = at.min_x;
  out.min_y = at.min_y;
  out.max_x = at.max_x;
  out.max_y = at.max_y;
  return out;
}

Tpbr Tpbr::Union(const Tpbr& a, const Tpbr& b) {
  // Anchor at the later reference time; the result is valid for all
  // t >= max(t_ref). Query times in this library are always >= every
  // indexed model's reference time.
  const double t = std::max(a.t_ref, b.t_ref);
  const Tpbr ra = a.RebasedTo(t);
  const Tpbr rb = b.RebasedTo(t);
  Tpbr out;
  out.t_ref = t;
  out.min_x = std::min(ra.min_x, rb.min_x);
  out.min_y = std::min(ra.min_y, rb.min_y);
  out.max_x = std::max(ra.max_x, rb.max_x);
  out.max_y = std::max(ra.max_y, rb.max_y);
  out.min_vx = std::min(ra.min_vx, rb.min_vx);
  out.min_vy = std::min(ra.min_vy, rb.min_vy);
  out.max_vx = std::max(ra.max_vx, rb.max_vx);
  out.max_vy = std::max(ra.max_vy, rb.max_vy);
  return out;
}

double Tpbr::AreaAt(double t) const { return AtTime(t).Area(); }

StatusOr<TprTree> TprTree::Create(const TprTreeOptions& options) {
  if (options.max_entries < 4) {
    return InvalidArgumentError("max_entries must be >= 4");
  }
  if (options.horizon <= 0.0) {
    return InvalidArgumentError("horizon must be positive");
  }
  TprTree tree(options);
  tree.root_ = std::make_unique<Node>();
  return tree;
}

Tpbr TprTree::NodeBox(const Node* node) const {
  LIRA_CHECK(!node->entries.empty());
  Tpbr box = node->entries[0].box;
  for (size_t i = 1; i < node->entries.size(); ++i) {
    box = Tpbr::Union(box, node->entries[i].box);
  }
  return box;
}

TprTree::Node* TprTree::ChooseLeaf(const Tpbr& box) {
  Node* node = root_.get();
  while (!node->leaf) {
    Entry* best = nullptr;
    double best_enlargement = 0.0;
    double best_area = 0.0;
    for (Entry& entry : node->entries) {
      const double t = HorizonMid(std::max(entry.box.t_ref, box.t_ref));
      const double area = entry.box.AreaAt(t);
      const double enlarged = Tpbr::Union(entry.box, box).AreaAt(t);
      const double enlargement = enlarged - area;
      if (best == nullptr || enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = &entry;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    node = best->child.get();
  }
  return node;
}

void TprTree::AdjustUpwards(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (Entry& entry : parent->entries) {
      if (entry.child.get() == node) {
        entry.box = NodeBox(node);
        break;
      }
    }
    node = parent;
  }
}

void TprTree::SplitNode(Node* node) {
  // Axis-sort split: order entries by their box center (at the horizon
  // midpoint) along the axis with the larger spread, then cut in half.
  double min_t = node->entries[0].box.t_ref;
  for (const Entry& entry : node->entries) {
    min_t = std::min(min_t, entry.box.t_ref);
  }
  const double t = HorizonMid(min_t);
  auto center = [&](const Entry& e, int axis) {
    const Rect r = e.box.AtTime(t);
    return axis == 0 ? (r.min_x + r.max_x) / 2 : (r.min_y + r.max_y) / 2;
  };
  double lo[2] = {1e300, 1e300};
  double hi[2] = {-1e300, -1e300};
  for (const Entry& entry : node->entries) {
    for (int axis = 0; axis < 2; ++axis) {
      lo[axis] = std::min(lo[axis], center(entry, axis));
      hi[axis] = std::max(hi[axis], center(entry, axis));
    }
  }
  const int axis = (hi[0] - lo[0] >= hi[1] - lo[1]) ? 0 : 1;
  std::sort(node->entries.begin(), node->entries.end(),
            [&](const Entry& a, const Entry& b) {
              return center(a, axis) < center(b, axis);
            });

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  const size_t half = node->entries.size() / 2;
  for (size_t i = half; i < node->entries.size(); ++i) {
    sibling->entries.push_back(std::move(node->entries[i]));
  }
  node->entries.resize(half);
  // Re-home moved entries.
  for (Entry& entry : sibling->entries) {
    if (sibling->leaf) {
      SetLeaf(entry.id, sibling.get());
    } else {
      entry.child->parent = sibling.get();
    }
  }

  if (node->parent == nullptr) {
    // Grow a new root.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.box = NodeBox(node);
    left.child = std::move(root_);
    Entry right;
    right.box = NodeBox(sibling.get());
    right.child = std::move(sibling);
    left.child->parent = new_root.get();
    right.child->parent = new_root.get();
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  for (Entry& entry : parent->entries) {
    if (entry.child.get() == node) {
      entry.box = NodeBox(node);
      break;
    }
  }
  Entry new_entry;
  new_entry.box = NodeBox(sibling.get());
  sibling->parent = parent;
  new_entry.child = std::move(sibling);
  parent->entries.push_back(std::move(new_entry));
}

void TprTree::InsertEntry(Node* leaf, Entry entry) {
  LIRA_DCHECK(leaf->leaf);
  const NodeId id = entry.id;
  SetLeaf(id, leaf);  // splits below re-home moved entries
  leaf->entries.push_back(std::move(entry));
  Node* node = leaf;
  while (node != nullptr &&
         static_cast<int32_t>(node->entries.size()) > options_.max_entries) {
    Node* parent = node->parent;
    SplitNode(node);  // may grow a new root when parent == nullptr
    node = parent;
  }
  // Refresh ancestor boxes along the entry's (possibly new) leaf path.
  AdjustUpwards(LeafOf(id));
}

void TprTree::Update(NodeId id, const LinearMotionModel& model) {
  // Update-in-place fast path: when the object is already indexed and its
  // new motion model stays inside its leaf's current box over the decision
  // horizon, replace the entry and widen ancestor boxes -- no structural
  // delete + reinsert. Dead-reckoning updates are small corrections, so
  // this is the common case.
  const Tpbr new_box = Tpbr::ForModel(model);
  if (Node* leaf = LeafOf(id); leaf != nullptr) {
    bool contained = false;
    if (leaf->entries.size() > 1) {
      Tpbr others = Tpbr::ForModel(model);  // placeholder; rebuilt below
      bool first = true;
      for (const Entry& entry : leaf->entries) {
        if (entry.id == id) {
          continue;
        }
        others = first ? entry.box : Tpbr::Union(others, entry.box);
        first = false;
      }
      const Tpbr combined = Tpbr::Union(others, new_box);
      const Tpbr current = NodeBox(leaf);
      // Accept when the leaf box does not grow (at reference and horizon).
      contained = true;
      for (double offset : {0.0, options_.horizon}) {
        const double t = std::max(combined.t_ref, current.t_ref) + offset;
        const Rect grown = combined.AtTime(t);
        const Rect now = current.AtTime(t);
        if (grown.min_x < now.min_x || grown.min_y < now.min_y ||
            grown.max_x > now.max_x || grown.max_y > now.max_y) {
          contained = false;
          break;
        }
      }
    }
    if (contained) {
      for (Entry& entry : leaf->entries) {
        if (entry.id == id) {
          entry.box = new_box;
          entry.model = model;
          break;
        }
      }
      AdjustUpwards(leaf);
      return;
    }
    Remove(id);
  }
  Entry entry;
  entry.box = new_box;
  entry.id = id;
  entry.model = model;
  Node* leaf = ChooseLeaf(entry.box);
  InsertEntry(leaf, std::move(entry));
}

void TprTree::ReinsertSubtree(Node* node) {
  if (node->leaf) {
    for (Entry& entry : node->entries) {
      Entry fresh;
      fresh.box = entry.box;
      fresh.id = entry.id;
      fresh.model = entry.model;
      Node* leaf = ChooseLeaf(fresh.box);
      InsertEntry(leaf, std::move(fresh));
    }
    return;
  }
  for (Entry& entry : node->entries) {
    ReinsertSubtree(entry.child.get());
  }
}

void TprTree::CondenseAfterRemove(Node* leaf) {
  Node* node = leaf;
  std::vector<std::unique_ptr<Node>> orphans;
  while (node->parent != nullptr &&
         static_cast<int32_t>(node->entries.size()) < MinEntries()) {
    Node* parent = node->parent;
    for (size_t i = 0; i < parent->entries.size(); ++i) {
      if (parent->entries[i].child.get() == node) {
        orphans.push_back(std::move(parent->entries[i].child));
        parent->entries.erase(parent->entries.begin() + i);
        break;
      }
    }
    node = parent;
  }
  if (!node->entries.empty()) {
    AdjustUpwards(node);
  }
  // Shrink the root while it is an internal node with a single child.
  while (!root_->leaf && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries[0].child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_ = std::make_unique<Node>();  // fully drained
  }
  for (auto& orphan : orphans) {
    ReinsertSubtree(orphan.get());
  }
}

bool TprTree::Remove(NodeId id) {
  Node* leaf = LeafOf(id);
  if (leaf == nullptr) {
    return false;
  }
  for (size_t i = 0; i < leaf->entries.size(); ++i) {
    if (leaf->entries[i].id == id) {
      leaf->entries.erase(leaf->entries.begin() + i);
      break;
    }
  }
  leaf_of_[id] = nullptr;
  --size_;
  if (!leaf->entries.empty()) {
    AdjustUpwards(leaf);
  }
  CondenseAfterRemove(leaf);
  return true;
}

std::vector<NodeId> TprTree::QueryAt(const Rect& range, double t) const {
  std::vector<NodeId> out;
  if (size_ == 0) {
    return out;
  }
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& entry : node->entries) {
      if (node->leaf) {
        // No box prune at the leaf: the entry's TPBR is a degenerate point
        // rectangle, and the open-interval Intersects test would reject
        // points lying exactly on the (closed) query min edge. The exact
        // model test below is just as cheap.
        if (range.Contains(entry.model.PredictAt(t))) {
          out.push_back(entry.id);
        }
      } else if (entry.box.AtTime(t).IntersectsClosed(range)) {
        // Closed-interval prune: internal boxes can be degenerate (e.g. a
        // subtree of stationary nodes on one road line) and must still
        // match queries whose edge touches them.
        stack.push_back(entry.child.get());
      }
    }
  }
  return out;
}

std::optional<Rect> TprTree::BoundsAt(double t) const {
  if (size_ == 0) {
    return std::nullopt;
  }
  return NodeBox(root_.get()).AtTime(t);
}

StatusOr<LinearMotionModel> TprTree::ModelOf(NodeId id) const {
  const Node* leaf = LeafOf(id);
  if (leaf == nullptr) {
    return NotFoundError("id not indexed: " + std::to_string(id));
  }
  for (const Entry& entry : leaf->entries) {
    if (entry.id == id) {
      return entry.model;
    }
  }
  return InternalError("leaf map points to a node without the entry");
}

int32_t TprTree::Height() const {
  int32_t height = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    LIRA_CHECK(!node->entries.empty());
    node = node->entries[0].child.get();
    ++height;
  }
  return height;
}

Status TprTree::CheckNode(const Node* node, const Node* expected_parent) const {
  if (node->parent != expected_parent) {
    return InternalError("parent pointer mismatch");
  }
  if (node != root_.get() &&
      static_cast<int32_t>(node->entries.size()) < MinEntries()) {
    return InternalError("node underflow");
  }
  if (static_cast<int32_t>(node->entries.size()) > options_.max_entries) {
    return InternalError("node overflow");
  }
  for (const Entry& entry : node->entries) {
    if (node->leaf) {
      if (LeafOf(entry.id) != node) {
        return InternalError("leaf map inconsistent");
      }
    } else {
      // Containment of the child's box at several probe times.
      const Tpbr child_box = NodeBox(entry.child.get());
      for (double offset : {0.0, options_.horizon / 2, options_.horizon}) {
        const double t = std::max(entry.box.t_ref, child_box.t_ref) + offset;
        const Rect parent_rect = entry.box.AtTime(t);
        const Rect child_rect = child_box.AtTime(t);
        const double tol = 1e-6 * (1.0 + std::abs(parent_rect.max_x));
        if (child_rect.min_x < parent_rect.min_x - tol ||
            child_rect.min_y < parent_rect.min_y - tol ||
            child_rect.max_x > parent_rect.max_x + tol ||
            child_rect.max_y > parent_rect.max_y + tol) {
          return InternalError("parent box does not contain child box");
        }
      }
      LIRA_RETURN_IF_ERROR(CheckNode(entry.child.get(), node));
    }
  }
  return OkStatus();
}

Status TprTree::CheckInvariants() const {
  if (root_ == nullptr) {
    return InternalError("missing root");
  }
  LIRA_RETURN_IF_ERROR(CheckNode(root_.get(), nullptr));
  // Every mapped id must be reachable, and the live count must match the
  // occupied slots.
  int32_t live = 0;
  for (NodeId id = 0; id < static_cast<NodeId>(leaf_of_.size()); ++id) {
    const Node* leaf = leaf_of_[id];
    if (leaf == nullptr) {
      continue;
    }
    ++live;
    bool found = false;
    for (const Entry& entry : leaf->entries) {
      found = found || entry.id == id;
    }
    if (!found) {
      return InternalError("mapped id missing from its leaf");
    }
  }
  if (live != size_) {
    return InternalError("leaf map live count drifted");
  }
  return OkStatus();
}

}  // namespace lira
