#include "lira/index/grid_index.h"

#include <algorithm>
#include <cmath>

#include "lira/common/check.h"

namespace lira {

GridIndex::GridIndex(const Rect& world, int32_t cells_per_side,
                     int32_t num_nodes)
    : world_(world),
      cells_per_side_(cells_per_side),
      cell_w_(world.width() / cells_per_side),
      cell_h_(world.height() / cells_per_side),
      cells_(static_cast<size_t>(cells_per_side) * cells_per_side),
      cell_of_(num_nodes, -1),
      slot_of_(num_nodes, -1),
      position_of_(num_nodes) {}

StatusOr<GridIndex> GridIndex::Create(const Rect& world,
                                      int32_t cells_per_side,
                                      int32_t num_nodes) {
  if (world.width() <= 0.0 || world.height() <= 0.0) {
    return InvalidArgumentError("world rectangle must be non-degenerate");
  }
  if (cells_per_side < 1) {
    return InvalidArgumentError("cells_per_side must be >= 1");
  }
  if (num_nodes < 0) {
    return InvalidArgumentError("num_nodes must be non-negative");
  }
  return GridIndex(world, cells_per_side, num_nodes);
}

int32_t GridIndex::CellIndexFor(Point p) const {
  p = world_.Clamp(p);
  auto cx = static_cast<int32_t>((p.x - world_.min_x) / cell_w_);
  auto cy = static_cast<int32_t>((p.y - world_.min_y) / cell_h_);
  cx = std::clamp(cx, 0, cells_per_side_ - 1);
  cy = std::clamp(cy, 0, cells_per_side_ - 1);
  return cy * cells_per_side_ + cx;
}

void GridIndex::RemoveFromBucket(NodeId id) {
  auto& bucket = cells_[cell_of_[id]];
  const int32_t slot = slot_of_[id];
  LIRA_DCHECK(slot >= 0 && slot < static_cast<int32_t>(bucket.size()) &&
              bucket[slot] == id);
  const NodeId moved = bucket.back();
  bucket[slot] = moved;
  slot_of_[moved] = slot;
  bucket.pop_back();
}

void GridIndex::Update(NodeId id, Point position) {
  LIRA_DCHECK(id >= 0 && id < num_nodes());
  position = world_.Clamp(position);
  const int32_t new_cell = CellIndexFor(position);
  const int32_t old_cell = cell_of_[id];
  position_of_[id] = position;
  if (old_cell == new_cell) {
    return;
  }
  if (old_cell >= 0) {
    RemoveFromBucket(id);
  } else {
    ++size_;
  }
  slot_of_[id] = static_cast<int32_t>(cells_[new_cell].size());
  cells_[new_cell].push_back(id);
  cell_of_[id] = new_cell;
}

void GridIndex::Remove(NodeId id) {
  if (!Contains(id)) {
    return;
  }
  RemoveFromBucket(id);
  cell_of_[id] = -1;
  slot_of_[id] = -1;
  --size_;
}

Point GridIndex::PositionOf(NodeId id) const {
  LIRA_CHECK(Contains(id));
  return position_of_[id];
}

std::vector<NodeId> GridIndex::RangeQuery(const Rect& range) const {
  std::vector<NodeId> result;
  RangeQuery(range, &result);
  return result;
}

void GridIndex::RangeQuery(const Rect& range, std::vector<NodeId>* out) const {
  out->clear();
  const Rect clipped = range.Intersection(world_);
  if (clipped.Area() <= 0.0) {
    return;
  }
  auto cx0 = static_cast<int32_t>((clipped.min_x - world_.min_x) / cell_w_);
  auto cy0 = static_cast<int32_t>((clipped.min_y - world_.min_y) / cell_h_);
  auto cx1 = static_cast<int32_t>((clipped.max_x - world_.min_x) / cell_w_);
  auto cy1 = static_cast<int32_t>((clipped.max_y - world_.min_y) / cell_h_);
  cx0 = std::clamp(cx0, 0, cells_per_side_ - 1);
  cy0 = std::clamp(cy0, 0, cells_per_side_ - 1);
  cx1 = std::clamp(cx1, 0, cells_per_side_ - 1);
  cy1 = std::clamp(cy1, 0, cells_per_side_ - 1);
  for (int32_t cy = cy0; cy <= cy1; ++cy) {
    for (int32_t cx = cx0; cx <= cx1; ++cx) {
      for (NodeId id : cells_[cy * cells_per_side_ + cx]) {
        if (range.Contains(position_of_[id])) {
          out->push_back(id);
        }
      }
    }
  }
}

int32_t GridIndex::RangeCount(const Rect& range) const {
  const Rect clipped = range.Intersection(world_);
  if (clipped.Area() <= 0.0) {
    return 0;
  }
  auto cx0 = static_cast<int32_t>((clipped.min_x - world_.min_x) / cell_w_);
  auto cy0 = static_cast<int32_t>((clipped.min_y - world_.min_y) / cell_h_);
  auto cx1 = static_cast<int32_t>((clipped.max_x - world_.min_x) / cell_w_);
  auto cy1 = static_cast<int32_t>((clipped.max_y - world_.min_y) / cell_h_);
  cx0 = std::clamp(cx0, 0, cells_per_side_ - 1);
  cy0 = std::clamp(cy0, 0, cells_per_side_ - 1);
  cx1 = std::clamp(cx1, 0, cells_per_side_ - 1);
  cy1 = std::clamp(cy1, 0, cells_per_side_ - 1);
  int32_t count = 0;
  for (int32_t cy = cy0; cy <= cy1; ++cy) {
    for (int32_t cx = cx0; cx <= cx1; ++cx) {
      for (NodeId id : cells_[cy * cells_per_side_ + cx]) {
        if (range.Contains(position_of_[id])) {
          ++count;
        }
      }
    }
  }
  return count;
}

}  // namespace lira
