// A TPR-tree: time-parameterized R-tree over moving points (Saltenis,
// Jensen, Leutenegger, Lopez, SIGMOD 2000 -- the paper's reference [15]).
//
// The paper positions LIRA as complementary to update-efficient moving-
// object indexes "such as the TPR-tree"; this implementation lets the CQ
// server answer range queries directly from the motion models it tracks,
// without rebuilding a snapshot index per evaluation.
//
// Entries are linear motion models. A node's bounding box is time-
// parameterized: a rectangle at the node's reference time plus velocity
// bounds per side, so the box at time t is
//
//   [min_x + min_vx * (t - t_ref),  max_x + max_vx * (t - t_ref)] x (same in y)
//
// which conservatively contains every child for all t >= t_ref. Queries at
// time t expand boxes to t and prune as in an R-tree. Updates are
// delete + reinsert, located through a direct id -> leaf map. Subtree
// choice and node splits minimize the box area at a configurable horizon
// midpoint, the standard TPR-tree heuristic.

#ifndef LIRA_INDEX_TPR_TREE_H_
#define LIRA_INDEX_TPR_TREE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"
#include "lira/mobility/position.h"
#include "lira/motion/linear_model.h"

namespace lira {

struct TprTreeOptions {
  /// Maximum entries per node (fan-out). Minimum is max_entries / 2.
  int32_t max_entries = 16;
  /// Lookahead horizon H (seconds): structure decisions minimize the
  /// time-parameterized area at t_ref + horizon / 2.
  double horizon = 60.0;
};

/// Time-parameterized bounding rectangle.
struct Tpbr {
  double t_ref = 0.0;
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;
  double min_vx = 0.0, min_vy = 0.0, max_vx = 0.0, max_vy = 0.0;

  /// Box extrapolated to time t (valid for t >= t_ref; earlier times are
  /// clamped to the reference box, keeping the bound conservative for the
  /// tree's use where t_ref <= all query times of interest).
  Rect AtTime(double t) const;

  /// The TPBR of a single motion model.
  static Tpbr ForModel(const LinearMotionModel& model);

  /// Smallest TPBR covering both inputs, anchored at max(t_ref) (valid for
  /// all t >= max(t_ref); queries in this library never look at earlier
  /// times).
  static Tpbr Union(const Tpbr& a, const Tpbr& b);

  /// Re-anchors the TPBR to a later reference time.
  Tpbr RebasedTo(double t) const;

  /// Area of AtTime(t).
  double AreaAt(double t) const;
};

/// Moving-object index over linear motion models.
class TprTree {
 public:
  static StatusOr<TprTree> Create(const TprTreeOptions& options = {});
  TprTree(TprTree&&) = default;
  TprTree& operator=(TprTree&&) = default;

  /// Inserts or replaces the motion model of `id`.
  void Update(NodeId id, const LinearMotionModel& model);

  /// Removes `id` if present; returns whether it was present.
  bool Remove(NodeId id);

  bool Contains(NodeId id) const { return LeafOf(id) != nullptr; }
  int32_t size() const { return size_; }

  /// Ids whose predicted position at time `t` lies inside `range`.
  /// Requires t >= every indexed model's t0 for exact results (earlier
  /// times still return a superset-free answer because each candidate is
  /// verified against its exact model).
  std::vector<NodeId> QueryAt(const Rect& range, double t) const;

  /// Conservative bounding box of every indexed object's predicted position
  /// at time t (the root TPBR extrapolated to t); nullopt when empty.
  /// Lets a caller prove all indexed objects lie inside some region, or
  /// skip a query that cannot intersect any of them.
  std::optional<Rect> BoundsAt(double t) const;

  /// The exact current model of an indexed object.
  StatusOr<LinearMotionModel> ModelOf(NodeId id) const;

  /// Structural invariants: parent boxes contain children at reference and
  /// horizon times, entry counts within bounds, id map consistent. For
  /// tests.
  Status CheckInvariants() const;

  /// Tree height (1 = root is a leaf); for tests and diagnostics.
  int32_t Height() const;

 private:
  struct Node;
  struct Entry {
    Tpbr box;
    // Exactly one of the two below is meaningful: child for internal nodes,
    // (id, model) for leaves.
    std::unique_ptr<Node> child;
    NodeId id = kInvalidNode;
    LinearMotionModel model;
  };
  struct Node {
    bool leaf = true;
    Node* parent = nullptr;
    std::vector<Entry> entries;
  };

  explicit TprTree(const TprTreeOptions& options) : options_(options) {}

  int32_t MinEntries() const { return options_.max_entries / 2; }
  double HorizonMid(double t_ref) const {
    return t_ref + options_.horizon / 2.0;
  }

  /// Leaf currently holding `id`, or nullptr when the id is not indexed.
  Node* LeafOf(NodeId id) const {
    return id >= 0 && static_cast<size_t>(id) < leaf_of_.size()
               ? leaf_of_[id]
               : nullptr;
  }
  /// Grows the slot map to cover `id` and points its slot at `leaf`,
  /// maintaining the live count.
  void SetLeaf(NodeId id, Node* leaf) {
    if (static_cast<size_t>(id) >= leaf_of_.size()) {
      leaf_of_.resize(static_cast<size_t>(id) + 1, nullptr);
    }
    if (leaf_of_[id] == nullptr) {
      ++size_;
    }
    leaf_of_[id] = leaf;
  }

  Node* ChooseLeaf(const Tpbr& box);
  void InsertEntry(Node* node, Entry entry);
  void SplitNode(Node* node);
  void AdjustUpwards(Node* node);
  Tpbr NodeBox(const Node* node) const;
  void CondenseAfterRemove(Node* leaf);
  void ReinsertSubtree(Node* node);
  Status CheckNode(const Node* node, const Node* expected_parent) const;

  TprTreeOptions options_;
  std::unique_ptr<Node> root_;
  /// Flat id -> leaf slot map (ISSUE 8): node ids are dense small integers,
  /// so a vector indexed by id replaces the old unordered_map on the
  /// delete + reinsert hot path -- no hashing, one predictable load.
  /// nullptr marks an unindexed id; size_ counts live slots.
  std::vector<Node*> leaf_of_;
  int32_t size_ = 0;
};

}  // namespace lira

#endif  // LIRA_INDEX_TPR_TREE_H_
