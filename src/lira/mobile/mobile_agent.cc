#include "lira/mobile/mobile_agent.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "lira/common/check.h"

namespace lira {

StatusOr<BaseStationNetwork> BaseStationNetwork::Create(
    std::vector<BaseStation> stations) {
  auto index = StationIndex::Create(std::move(stations));
  if (!index.ok()) {
    return index.status();
  }
  return BaseStationNetwork(*std::move(index));
}

Status BaseStationNetwork::PublishPlan(const SheddingPlan& plan) {
  const std::vector<BaseStation>& stations = index_.stations();
  for (size_t s = 0; s < stations.size(); ++s) {
    auto payload = EncodePlanSubset(plan, stations[s]);
    if (!payload.ok()) {
      return payload.status();
    }
    payloads_[s] = *std::move(payload);
    ++total_broadcasts_;
    total_broadcast_bytes_ += static_cast<int64_t>(payloads_[s].size());
  }
  ++epoch_;
  return OkStatus();
}

int32_t BaseStationNetwork::StationForPosition(Point p) const {
  return index_.Lookup(p);
}

const std::vector<uint8_t>& BaseStationNetwork::PayloadFor(
    int32_t station) const {
  LIRA_DCHECK(station >= 0 &&
              station < static_cast<int32_t>(payloads_.size()));
  return payloads_[station];
}

void BaseStationNetwork::RecordHandoff(int32_t station) {
  ++total_handoffs_;
  total_handoff_bytes_ += static_cast<int64_t>(payloads_[station].size());
}

MobileAgent::MobileAgent(NodeId id, double fallback_delta)
    : id_(id), fallback_delta_(fallback_delta) {
  LIRA_CHECK(fallback_delta > 0.0);
}

Status MobileAgent::Install(const std::vector<uint8_t>& payload,
                            const BaseStation& station) {
  auto regions = DecodeRegions(payload);
  if (!regions.ok()) {
    return regions.status();
  }
  regions_ = *std::move(regions);
  // Local 5x5 locator over the station's coverage bounding square.
  locator_frame_ = Rect{station.center.x - station.radius,
                        station.center.y - station.radius,
                        station.center.x + station.radius,
                        station.center.y + station.radius};
  for (auto& cell : locator_) {
    cell.clear();
  }
  const double cell_w = locator_frame_.width() / kLocatorSide;
  const double cell_h = locator_frame_.height() / kLocatorSide;
  for (int32_t r = 0; r < static_cast<int32_t>(regions_.size()); ++r) {
    const Rect& area = regions_[r].area;
    auto cx0 = static_cast<int32_t>(
        std::floor((area.min_x - locator_frame_.min_x) / cell_w));
    auto cy0 = static_cast<int32_t>(
        std::floor((area.min_y - locator_frame_.min_y) / cell_h));
    auto cx1 = static_cast<int32_t>(
        std::ceil((area.max_x - locator_frame_.min_x) / cell_w) - 1);
    auto cy1 = static_cast<int32_t>(
        std::ceil((area.max_y - locator_frame_.min_y) / cell_h) - 1);
    cx0 = std::clamp(cx0, 0, kLocatorSide - 1);
    cy0 = std::clamp(cy0, 0, kLocatorSide - 1);
    cx1 = std::clamp(cx1, cx0, kLocatorSide - 1);
    cy1 = std::clamp(cy1, cy0, kLocatorSide - 1);
    for (int32_t cy = cy0; cy <= cy1; ++cy) {
      for (int32_t cx = cx0; cx <= cx1; ++cx) {
        locator_[cy * kLocatorSide + cx].push_back(r);
      }
    }
  }
  return OkStatus();
}

double MobileAgent::DeltaAt(Point p) const {
  if (regions_.empty()) {
    return fallback_delta_;
  }
  const double cell_w = locator_frame_.width() / kLocatorSide;
  const double cell_h = locator_frame_.height() / kLocatorSide;
  const auto cx = std::clamp(
      static_cast<int32_t>((p.x - locator_frame_.min_x) / cell_w), 0,
      kLocatorSide - 1);
  const auto cy = std::clamp(
      static_cast<int32_t>((p.y - locator_frame_.min_y) / cell_h), 0,
      kLocatorSide - 1);
  const auto& candidates = locator_[cy * kLocatorSide + cx];
  for (int32_t r : candidates) {
    if (regions_[r].area.Contains(p)) {
      return regions_[r].delta;
    }
  }
  // Coverage-edge fallback: nearest region center among all installed
  // regions (the node is about to hand off anyway).
  double best_dist = 0.0;
  const BroadcastRegion* best = nullptr;
  for (const BroadcastRegion& region : regions_) {
    const double d = Distance(region.area.Center(), p);
    if (best == nullptr || d < best_dist) {
      best = &region;
      best_dist = d;
    }
  }
  return best != nullptr ? best->delta : fallback_delta_;
}

StatusOr<std::optional<ModelUpdate>> MobileAgent::Observe(
    const PositionSample& sample, BaseStationNetwork& network) {
  LIRA_DCHECK(sample.node_id == id_);
  const int32_t station = network.StationForPosition(sample.position);
  if (station != station_) {
    // Hand-off: the new station unicasts its current subset (Section 2.2).
    LIRA_RETURN_IF_ERROR(
        Install(network.PayloadFor(station), network.station(station)));
    if (station_ >= 0) {
      network.RecordHandoff(station);
      ++handoffs_;
    }
    station_ = station;
    installed_epoch_ = network.epoch();
  } else if (installed_epoch_ != network.epoch()) {
    // The station broadcast a refreshed subset since we last listened.
    LIRA_RETURN_IF_ERROR(
        Install(network.PayloadFor(station), network.station(station)));
    installed_epoch_ = network.epoch();
  }

  const double delta = DeltaAt(sample.position);
  bool send = !has_model_;
  if (!send) {
    send = Distance(last_sent_.PredictAt(sample.time), sample.position) >
           delta;
  }
  if (!send) {
    return std::optional<ModelUpdate>();
  }
  last_sent_ = LinearMotionModel::FromSample(sample);
  has_model_ = true;
  ++updates_sent_;
  return std::optional<ModelUpdate>(ModelUpdate{id_, last_sent_});
}

}  // namespace lira
