// The mobile-node runtime (paper Section 2.2, third layer) and the
// base-station dissemination runtime (second layer).
//
// Each mobile node stores the subset of shedding regions and update
// throttlers covering its current base station's area, locates its region
// locally with a tiny 5x5 grid index (Section 4.3.2), and switches subsets
// on hand-off. The BaseStationNetwork re-encodes per-station payloads when
// the server publishes a new plan and accounts for every broadcast and
// hand-off message.

#ifndef LIRA_MOBILE_MOBILE_AGENT_H_
#define LIRA_MOBILE_MOBILE_AGENT_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "lira/basestation/base_station.h"
#include "lira/basestation/plan_codec.h"
#include "lira/common/status.h"
#include "lira/core/shedding_plan.h"
#include "lira/mobility/position.h"
#include "lira/motion/linear_model.h"

namespace lira {

/// Server-to-node dissemination runtime: per-station encoded payloads,
/// versioned by a plan epoch, with message accounting.
class BaseStationNetwork {
 public:
  /// Requires a non-empty station list.
  static StatusOr<BaseStationNetwork> Create(
      std::vector<BaseStation> stations);

  /// Publishes a new plan: re-encodes every station's subset and bumps the
  /// epoch (every station broadcasts once).
  Status PublishPlan(const SheddingPlan& plan);

  int64_t epoch() const { return epoch_; }
  int32_t num_stations() const {
    return static_cast<int32_t>(index_.stations().size());
  }
  const BaseStation& station(int32_t id) const {
    return index_.stations()[id];
  }
  /// The covering (or nearest) station for a position (grid-bucketed
  /// StationIndex lookup; equivalent to the StationForPoint scan).
  int32_t StationForPosition(Point p) const;
  /// Encoded payload of a station for the current epoch.
  const std::vector<uint8_t>& PayloadFor(int32_t station) const;

  /// Called by agents on hand-off (unicast of the new subset).
  void RecordHandoff(int32_t station);

  // Message accounting.
  int64_t total_broadcasts() const { return total_broadcasts_; }
  int64_t total_broadcast_bytes() const { return total_broadcast_bytes_; }
  int64_t total_handoffs() const { return total_handoffs_; }
  int64_t total_handoff_bytes() const { return total_handoff_bytes_; }

 private:
  explicit BaseStationNetwork(StationIndex index)
      : index_(std::move(index)), payloads_(index_.stations().size()) {}

  StationIndex index_;
  std::vector<std::vector<uint8_t>> payloads_;
  int64_t epoch_ = 0;
  int64_t total_broadcasts_ = 0;
  int64_t total_broadcast_bytes_ = 0;
  int64_t total_handoffs_ = 0;
  int64_t total_handoff_bytes_ = 0;
};

/// One mobile node: installed region subset, local 5x5 locator, dead
/// reckoning against the regional throttler.
class MobileAgent {
 public:
  /// `fallback_delta` is used before the first broadcast arrives (the ideal
  /// resolution delta_min, so un-provisioned nodes are maximally accurate).
  MobileAgent(NodeId id, double fallback_delta);

  /// Observes the node's true state: syncs with the network (hand-off or
  /// refreshed broadcast), picks the local throttler, and returns the
  /// position update to transmit, if any.
  StatusOr<std::optional<ModelUpdate>> Observe(const PositionSample& sample,
                                               BaseStationNetwork& network);

  /// Throttler for a position under the installed subset (fallback when no
  /// region matches).
  double DeltaAt(Point p) const;

  NodeId id() const { return id_; }
  int32_t current_station() const { return station_; }
  int32_t regions_known() const {
    return static_cast<int32_t>(regions_.size());
  }
  int64_t handoffs() const { return handoffs_; }
  int64_t updates_sent() const { return updates_sent_; }

 private:
  static constexpr int32_t kLocatorSide = 5;  // paper: "tiny 5x5 grid index"

  Status Install(const std::vector<uint8_t>& payload,
                 const BaseStation& station);

  NodeId id_;
  double fallback_delta_;
  int32_t station_ = -1;
  int64_t installed_epoch_ = -1;
  std::vector<BroadcastRegion> regions_;
  Rect locator_frame_;
  std::array<std::vector<int32_t>, kLocatorSide * kLocatorSide> locator_;
  bool has_model_ = false;
  LinearMotionModel last_sent_;
  int64_t handoffs_ = 0;
  int64_t updates_sent_ = 0;
};

}  // namespace lira

#endif  // LIRA_MOBILE_MOBILE_AGENT_H_
