// Query evaluation and per-query accuracy comparison (paper Section 4.1.1).
//
// Everything here only reads the indexes, so evaluation is safe to run
// concurrently over queries (CompareAllQueries takes an optional ThreadPool
// and keeps one scratch buffer per worker; results land in per-query slots,
// so the output is identical for any thread count).

#ifndef LIRA_CQ_EVALUATOR_H_
#define LIRA_CQ_EVALUATOR_H_

#include <vector>

#include "lira/common/parallel.h"
#include "lira/cq/query_registry.h"
#include "lira/index/grid_index.h"

namespace lira {

/// Accuracy of one query result at one instant, comparing the server's
/// believed result R(q) against the ground truth R*(q).
struct QueryAccuracy {
  /// (|R* \ R| + |R \ R*|) / max(1, |R*|)  -- the containment error.
  double containment_error = 0.0;
  /// Mean |p(o) - p*(o)| over o in R(q) (0 when R(q) is empty) -- the
  /// position error, in meters.
  double position_error = 0.0;
  int32_t truth_size = 0;
  int32_t believed_size = 0;
};

/// Reusable result buffers for one evaluation stream (one per worker when
/// evaluating in parallel); avoids reallocating two vectors per query.
struct QueryEvalScratch {
  std::vector<NodeId> truth;
  std::vector<NodeId> believed;
};

/// Members of `range` in `index`, sorted by id (for set comparison).
std::vector<NodeId> SortedRangeQuery(const GridIndex& index,
                                     const Rect& range);

/// As above into a reused buffer (cleared first).
void SortedRangeQuery(const GridIndex& index, const Rect& range,
                      std::vector<NodeId>* out);

/// Compares one query's result between the ground-truth index and the
/// believed (dead-reckoned) index. `truth_index` must contain every node
/// that appears in `believed_index`.
QueryAccuracy CompareQuery(const GridIndex& truth_index,
                           const GridIndex& believed_index, const Rect& range);

/// As above with caller-owned scratch buffers (hot path).
QueryAccuracy CompareQuery(const GridIndex& truth_index,
                           const GridIndex& believed_index, const Rect& range,
                           QueryEvalScratch* scratch);

/// Evaluates every query in the registry; result[i] is the accuracy of
/// query i. With a non-null `pool` the queries are mapped over its workers
/// (the indexes are only read); the result is identical either way.
std::vector<QueryAccuracy> CompareAllQueries(const GridIndex& truth_index,
                                             const GridIndex& believed_index,
                                             const QueryRegistry& registry,
                                             ThreadPool* pool = nullptr);

}  // namespace lira

#endif  // LIRA_CQ_EVALUATOR_H_
