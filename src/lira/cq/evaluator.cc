#include "lira/cq/evaluator.h"

#include <algorithm>

#include "lira/common/check.h"

namespace lira {

std::vector<NodeId> SortedRangeQuery(const GridIndex& index,
                                     const Rect& range) {
  std::vector<NodeId> members;
  SortedRangeQuery(index, range, &members);
  return members;
}

void SortedRangeQuery(const GridIndex& index, const Rect& range,
                      std::vector<NodeId>* out) {
  index.RangeQuery(range, out);
  std::sort(out->begin(), out->end());
}

QueryAccuracy CompareQuery(const GridIndex& truth_index,
                           const GridIndex& believed_index,
                           const Rect& range) {
  QueryEvalScratch scratch;
  return CompareQuery(truth_index, believed_index, range, &scratch);
}

QueryAccuracy CompareQuery(const GridIndex& truth_index,
                           const GridIndex& believed_index, const Rect& range,
                           QueryEvalScratch* scratch) {
  SortedRangeQuery(truth_index, range, &scratch->truth);
  SortedRangeQuery(believed_index, range, &scratch->believed);
  const std::vector<NodeId>& truth = scratch->truth;
  const std::vector<NodeId>& believed = scratch->believed;

  QueryAccuracy acc;
  acc.truth_size = static_cast<int32_t>(truth.size());
  acc.believed_size = static_cast<int32_t>(believed.size());

  // Symmetric difference size via merge.
  size_t i = 0;
  size_t j = 0;
  int32_t sym_diff = 0;
  while (i < truth.size() && j < believed.size()) {
    if (truth[i] == believed[j]) {
      ++i;
      ++j;
    } else if (truth[i] < believed[j]) {
      ++sym_diff;
      ++i;
    } else {
      ++sym_diff;
      ++j;
    }
  }
  sym_diff += static_cast<int32_t>((truth.size() - i) + (believed.size() - j));
  acc.containment_error =
      static_cast<double>(sym_diff) /
      static_cast<double>(std::max<int32_t>(1, acc.truth_size));

  // Position error over the believed result set.
  if (!believed.empty()) {
    double total = 0.0;
    for (NodeId id : believed) {
      LIRA_DCHECK(truth_index.Contains(id));
      total += Distance(believed_index.PositionOf(id),
                        truth_index.PositionOf(id));
    }
    acc.position_error = total / static_cast<double>(believed.size());
  }
  return acc;
}

std::vector<QueryAccuracy> CompareAllQueries(const GridIndex& truth_index,
                                             const GridIndex& believed_index,
                                             const QueryRegistry& registry,
                                             ThreadPool* pool) {
  std::vector<QueryAccuracy> out(registry.size());
  const std::vector<RangeQuery>& queries = registry.queries();
  if (pool == nullptr || pool->num_threads() <= 1) {
    QueryEvalScratch scratch;
    for (size_t q = 0; q < queries.size(); ++q) {
      out[q] = CompareQuery(truth_index, believed_index, queries[q].range,
                            &scratch);
    }
    return out;
  }
  std::vector<QueryEvalScratch> scratch(pool->num_threads());
  pool->ParallelFor(
      0, static_cast<int64_t>(queries.size()), /*grain=*/1,
      [&](int32_t chunk, int64_t begin, int64_t end) {
        for (int64_t q = begin; q < end; ++q) {
          out[static_cast<size_t>(q)] =
              CompareQuery(truth_index, believed_index,
                           queries[static_cast<size_t>(q)].range,
                           &scratch[chunk]);
        }
      });
  return out;
}

}  // namespace lira
