#include "lira/cq/evaluator.h"

#include <algorithm>

#include "lira/common/check.h"

namespace lira {

std::vector<NodeId> SortedRangeQuery(const GridIndex& index,
                                     const Rect& range) {
  std::vector<NodeId> members = index.RangeQuery(range);
  std::sort(members.begin(), members.end());
  return members;
}

QueryAccuracy CompareQuery(const GridIndex& truth_index,
                           const GridIndex& believed_index,
                           const Rect& range) {
  const std::vector<NodeId> truth = SortedRangeQuery(truth_index, range);
  const std::vector<NodeId> believed = SortedRangeQuery(believed_index, range);

  QueryAccuracy acc;
  acc.truth_size = static_cast<int32_t>(truth.size());
  acc.believed_size = static_cast<int32_t>(believed.size());

  // Symmetric difference size via merge.
  size_t i = 0;
  size_t j = 0;
  int32_t sym_diff = 0;
  while (i < truth.size() && j < believed.size()) {
    if (truth[i] == believed[j]) {
      ++i;
      ++j;
    } else if (truth[i] < believed[j]) {
      ++sym_diff;
      ++i;
    } else {
      ++sym_diff;
      ++j;
    }
  }
  sym_diff += static_cast<int32_t>((truth.size() - i) + (believed.size() - j));
  acc.containment_error =
      static_cast<double>(sym_diff) /
      static_cast<double>(std::max<int32_t>(1, acc.truth_size));

  // Position error over the believed result set.
  if (!believed.empty()) {
    double total = 0.0;
    for (NodeId id : believed) {
      LIRA_DCHECK(truth_index.Contains(id));
      total += Distance(believed_index.PositionOf(id),
                        truth_index.PositionOf(id));
    }
    acc.position_error = total / static_cast<double>(believed.size());
  }
  return acc;
}

std::vector<QueryAccuracy> CompareAllQueries(const GridIndex& truth_index,
                                             const GridIndex& believed_index,
                                             const QueryRegistry& registry) {
  std::vector<QueryAccuracy> out;
  out.reserve(registry.size());
  for (const RangeQuery& q : registry.queries()) {
    out.push_back(CompareQuery(truth_index, believed_index, q.range));
  }
  return out;
}

}  // namespace lira
