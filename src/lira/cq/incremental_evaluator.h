// Incremental continual-query evaluation (ISSUE 3 tentpole).
//
// CompareAllQueries re-executes every registered range query on each
// accuracy sample: O(Q * avg_result) work even when almost nothing moved.
// IncrementalEvaluator instead maintains each query's member sets (truth and
// believed) across samples: a node's position update consults only the
// query lists of its old and new grid cells (QueryIndex), emits membership
// deltas for the handful of queries whose boundary it crossed, and the
// per-sample cost drops to O(moved_nodes * queries_per_cell).
//
// Determinism contract (DESIGN.md sections 7 and 8): the evaluator's output
// is bitwise identical to the from-scratch CompareAllQueries path at any
// thread count. ApplySample's parallel phase writes only per-node slots and
// per-worker delta buffers; because ParallelFor chunks are contiguous and
// ascending, concatenating the buffers in chunk order reproduces the serial
// event stream, which is then regrouped by (query, family) with a stable
// counting sort and applied serially. Membership deltas are integers, the
// symmetric difference is maintained as an integer counter (its update rule
// keeps the invariant exact at every step, so the final counts are
// independent of application order), and the per-query position error sums
// identical per-node distance terms in the same ascending-id order as
// CompareQuery -- so no floating-point reassociation can occur.
//
// kFullRescan keeps the original two-GridIndex + CompareQuery path alive
// behind the same interface for verification and benchmarking.

#ifndef LIRA_CQ_INCREMENTAL_EVALUATOR_H_
#define LIRA_CQ_INCREMENTAL_EVALUATOR_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/parallel.h"
#include "lira/common/status.h"
#include "lira/cq/evaluator.h"
#include "lira/cq/query_index.h"
#include "lira/cq/query_registry.h"
#include "lira/index/grid_index.h"

namespace lira {

/// Evaluation strategy; both produce bitwise-identical QueryAccuracy.
enum class EvalMode {
  /// Delta-maintained member sets via the QueryIndex (the fast path).
  kIncremental,
  /// Rebuild member sets per sample with two GridIndexes + CompareQuery
  /// (the original path, kept for verification).
  kFullRescan,
};

/// Maintains per-query truth/believed member sets across accuracy samples.
/// One instance per simulation run; call ApplySample with the full per-node
/// position snapshot each sample, then Evaluate for the per-query accuracy.
class IncrementalEvaluator {
 public:
  /// `cells_per_side` controls the QueryIndex granularity (use the same
  /// value as the snapshot GridIndexes it replaces). `margin` expands query
  /// ranges in the cell->query index: correctness never requires it, but it
  /// lets clearance balls cross cell boundaries (a node hugging a cell edge
  /// with no query nearby would otherwise re-walk every sample). The
  /// default (any negative value) picks cell_size / 8, a good trade between
  /// list length and skip rate; 0 disables the headroom.
  static StatusOr<IncrementalEvaluator> Create(
      const Rect& world, int32_t cells_per_side, int32_t num_nodes,
      const QueryRegistry& registry, EvalMode mode = EvalMode::kIncremental,
      double margin = -1.0);

  /// Ingests one accuracy sample: per-node truth position, believed
  /// position, and whether the server believes it knows the node at all
  /// (same triple the simulation loop produced for the snapshot indexes).
  /// With a pool, nodes are processed in deterministic contiguous chunks;
  /// per-worker delta buffers are concatenated in chunk (= node) order and
  /// applied grouped by query.
  void ApplySample(const std::vector<Point>& truth_positions,
                   const std::vector<Point>& believed_positions,
                   const std::vector<char>& believed_known,
                   ThreadPool* pool = nullptr);

  /// Per-query accuracy of the current sample; slot q corresponds to query
  /// id q (removed queries report a default-constructed QueryAccuracy).
  /// Bitwise identical to CompareAllQueries over the same positions.
  std::vector<QueryAccuracy> Evaluate(ThreadPool* pool = nullptr);

  /// Registers a new query mid-run; returns its dense id (registration
  /// order, matching QueryRegistry semantics). Member sets are initialized
  /// from the currently stored positions.
  QueryId AddQuery(const Rect& range);

  /// Unregisters a query mid-run; its Evaluate slot reports defaults.
  void RemoveQuery(QueryId id);

  int32_t num_queries() const { return static_cast<int32_t>(queries_.size()); }
  int32_t num_nodes() const { return num_nodes_; }
  EvalMode mode() const { return mode_; }

  /// Cumulative membership deltas applied (incremental mode only).
  int64_t deltas_applied() const { return deltas_applied_; }
  /// Cumulative candidate (node, query) pairs examined during delta walks
  /// (incremental mode only).
  int64_t queries_touched() const { return queries_touched_; }

 private:
  /// Index into the per-family state arrays.
  enum Family : int { kTruth = 0, kBelieved = 1 };

  /// One membership flip, produced by the parallel walk and applied
  /// serially in node order.
  struct MemberEvent {
    QueryId query;
    NodeId node;
    uint8_t family;
    bool add;
  };

  /// Per-worker output of the parallel phase.
  struct WorkerScratch {
    std::vector<MemberEvent> events;
    int64_t touched = 0;
  };

  IncrementalEvaluator(const Rect& world, int32_t num_nodes, EvalMode mode,
                       QueryIndex query_index);

  /// Per-node per-family state, packed so the hot skip test touches one
  /// cache line: authoritative clamped position, the reference point of the
  /// last candidate walk, and the L1 clearance ball that walk certified
  /// (largest displacement from `ref` that provably flips no membership and
  /// keeps the cell assignment; 0 disables skipping).
  struct NodeState {
    Point pos;
    Point ref;
    double clearance = 0.0;
    uint8_t present = 0;
  };

  void ProcessNode(NodeId id, const std::vector<Point>& truth_positions,
                   const std::vector<Point>& believed_positions,
                   const std::vector<char>& believed_known,
                   WorkerScratch* ws);
  void ProcessFamily(Family family, NodeId id, bool new_present,
                     Point new_pos, WorkerScratch* ws);
  /// Emits membership-flip events for the move old -> new and returns the
  /// clearance of `new_pos` in its cell (computed inside the same pass over
  /// the cell's candidate lists; 0.0 when !new_present).
  double WalkCandidates(Family family, NodeId id, bool old_present,
                        Point old_pos, bool new_present, Point new_pos,
                        WorkerScratch* ws);
  void ApplyEvents(const std::vector<WorkerScratch>& scratch);

  Rect world_;
  int32_t num_nodes_;
  EvalMode mode_;
  QueryIndex query_index_;

  /// Dense query state; ids are registration order.
  std::vector<Rect> queries_;
  std::vector<char> active_;
  /// members_[family][q]: current member ids, ascending.
  std::array<std::vector<std::vector<NodeId>>, 2> members_;
  /// |truth(q) symmetric-difference believed(q)|, maintained exactly.
  std::vector<int32_t> sym_diff_;

  /// Per-node authoritative state (clamped positions), both families packed
  /// into adjacent records (ProcessNode touches truth then believed, so one
  /// node's state streams through consecutive cache lines); a node within
  /// its clearance ball provably flipped no membership, so its walk is
  /// skipped entirely.
  std::vector<std::array<NodeState, 2>> state_;
  /// Distance(believed, truth) per believed-known node, refreshed each
  /// sample; summed per query in ascending id order by Evaluate.
  std::vector<double> node_distance_;

  /// ApplyEvents scratch, kept across samples to avoid reallocation:
  /// counting-sort bucket boundaries ((query, family) keys) and the
  /// regrouped event buffer.
  std::vector<uint32_t> event_starts_;
  std::vector<MemberEvent> sorted_events_;

  /// kFullRescan state: the original snapshot indexes.
  std::optional<GridIndex> truth_index_;
  std::optional<GridIndex> believed_index_;

  int64_t deltas_applied_ = 0;
  int64_t queries_touched_ = 0;
};

}  // namespace lira

#endif  // LIRA_CQ_INCREMENTAL_EVALUATOR_H_
