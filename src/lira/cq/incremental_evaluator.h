// Incremental continual-query evaluation (ISSUE 3 tentpole; SoA hot path,
// ISSUE 8).
//
// CompareAllQueries re-executes every registered range query on each
// accuracy sample: O(Q * avg_result) work even when almost nothing moved.
// IncrementalEvaluator instead maintains each query's membership state
// across samples (a believed member list plus a truth member counter): a
// node's position update consults only the query lists of its old and new
// grid cells (QueryIndex), emits membership deltas for the handful of
// queries whose boundary it crossed, and the per-sample cost drops to
// O(moved_nodes * queries_per_cell).
//
// Per-node walk state lives in structure-of-arrays columns (NodeColumns,
// one instance per membership family), so the per-chunk pre-passes --
// clamping the incoming positions and testing every node against its L1
// clearance ball -- run as contiguous auto-vectorized kernels
// (common/kernels.h) before a scalar driver walks only the nodes whose
// clearance test failed. The same-cell candidate walk streams a cell's
// partial-query rect columns through the RectWalkDistances kernel into
// per-chunk FrameArena scratch (sized once per chunk from the query index's
// partial-list high watermark); the min-reduction over flip distances and
// the event emission stay scalar to preserve evaluation order.
//
// Determinism contract (DESIGN.md sections 7, 8 and 11): the evaluator's
// output is bitwise identical to the from-scratch CompareAllQueries path at
// any thread count, and identical between the vectorized and scalar-
// reference kernel builds. ApplySample's parallel phase writes only
// per-node column slots and per-worker delta buffers; the per-worker
// buffers are regrouped into (query, family) buckets with a counting sort
// and each bucket is sorted by node id before it is applied, so the
// applied event stream is a pure function of the event SET -- independent
// of walk schedule, chunk boundaries, and thread count.
// Membership deltas are integers, the symmetric difference is maintained as
// an integer counter (its update rule keeps the invariant exact at every
// step, so the final counts are independent of application order), and the
// per-query position error sums identical per-node distance terms in the
// same ascending-id order as CompareQuery -- so no floating-point
// reassociation can occur.
//
// kFullRescan keeps the original two-GridIndex + CompareQuery path alive
// behind the same interface for verification and benchmarking.

#ifndef LIRA_CQ_INCREMENTAL_EVALUATOR_H_
#define LIRA_CQ_INCREMENTAL_EVALUATOR_H_

#include <algorithm>
#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "lira/common/arena.h"
#include "lira/common/geometry.h"
#include "lira/common/kernels.h"
#include "lira/common/node_store.h"
#include "lira/common/parallel.h"
#include "lira/common/status.h"
#include "lira/cq/evaluator.h"
#include "lira/cq/query_index.h"
#include "lira/cq/query_registry.h"
#include "lira/index/grid_index.h"

namespace lira {

/// Evaluation strategy; both produce bitwise-identical QueryAccuracy.
enum class EvalMode {
  /// Delta-maintained member sets via the QueryIndex (the fast path).
  kIncremental,
  /// Rebuild member sets per sample with two GridIndexes + CompareQuery
  /// (the original path, kept for verification).
  kFullRescan,
};

/// Maintains per-query truth/believed member sets across accuracy samples.
/// One instance per simulation run; call ApplySample with the full per-node
/// position snapshot each sample, then Evaluate for the per-query accuracy.
class IncrementalEvaluator {
 public:
  /// `cells_per_side` controls the QueryIndex granularity (use the same
  /// value as the snapshot GridIndexes it replaces). `margin` expands query
  /// ranges in the cell->query index: correctness never requires it, but it
  /// lets clearance balls cross cell boundaries (a node hugging a cell edge
  /// with no query nearby would otherwise re-walk every sample). The
  /// default (any negative value) picks cell_size / 8, a good trade between
  /// list length and skip rate; 0 disables the headroom.
  static StatusOr<IncrementalEvaluator> Create(
      const Rect& world, int32_t cells_per_side, int32_t num_nodes,
      const QueryRegistry& registry, EvalMode mode = EvalMode::kIncremental,
      double margin = -1.0);

  /// Ingests one accuracy sample from SoA position columns: per-node truth
  /// position, believed position, and whether the server believes it knows
  /// the node at all. Lanes with believed_known[id] == 0 ignore the
  /// believed columns. With a pool, nodes are processed in deterministic
  /// contiguous chunks; per-worker delta buffers are concatenated in chunk
  /// (= node) order and applied grouped by query.
  void ApplySample(const double* truth_x, const double* truth_y,
                   const double* believed_x, const double* believed_y,
                   const uint8_t* believed_known, ThreadPool* pool = nullptr);

  /// As above, straight from a NodeStore snapshot.
  void ApplySample(const NodeStore& store, ThreadPool* pool = nullptr) {
    ApplySample(store.truth_x(), store.truth_y(), store.believed_x(),
                store.believed_y(), store.believed_known(), pool);
  }

  /// Array-of-structs convenience overload (tests and legacy callers);
  /// stages the points into reusable columns and runs the SoA path.
  void ApplySample(const std::vector<Point>& truth_positions,
                   const std::vector<Point>& believed_positions,
                   const std::vector<char>& believed_known,
                   ThreadPool* pool = nullptr);

  /// Per-query accuracy of the current sample; slot q corresponds to query
  /// id q (removed queries report a default-constructed QueryAccuracy).
  /// Bitwise identical to CompareAllQueries over the same positions.
  std::vector<QueryAccuracy> Evaluate(ThreadPool* pool = nullptr);

  /// Registers a new query mid-run; returns its dense id (registration
  /// order, matching QueryRegistry semantics). Member sets are initialized
  /// from the currently stored positions.
  QueryId AddQuery(const Rect& range);

  /// Unregisters a query mid-run; its Evaluate slot reports defaults.
  void RemoveQuery(QueryId id);

  int32_t num_queries() const { return static_cast<int32_t>(queries_.size()); }
  int32_t num_nodes() const { return num_nodes_; }
  EvalMode mode() const { return mode_; }

  /// Cumulative membership deltas applied (incremental mode only).
  int64_t deltas_applied() const { return deltas_applied_; }
  /// Cumulative candidate (node, query) pairs examined during delta walks
  /// (incremental mode only).
  int64_t queries_touched() const { return queries_touched_; }

  /// Heap footprint of the per-node walk columns (bytes/node telemetry).
  size_t node_state_bytes() const {
    return cols_[0].MemoryBytes() + cols_[1].MemoryBytes() +
           node_distance_.capacity() * sizeof(double);
  }
  /// Largest per-worker scratch-arena watermark seen so far (bytes).
  size_t arena_high_watermark() const {
    size_t hw = 0;
    for (const WorkerScratch& ws : scratch_) {
      hw = std::max(hw, ws.chunk_arena.high_watermark());
    }
    return hw;
  }

 private:
  /// Index into the per-family state arrays.
  enum Family : int { kTruth = 0, kBelieved = 1 };

  /// One membership flip, produced by the parallel walk and applied
  /// serially in node order. Packed to 8 bytes: query ids occupy the top 30
  /// bits of `tag` (AddQuery checks the bound), family bit 1, add bit 0.
  struct MemberEvent {
    uint32_t tag;
    NodeId node;
  };

  static MemberEvent MakeEvent(QueryId query, NodeId node, int family,
                               bool add) {
    return MemberEvent{(static_cast<uint32_t>(query) << 2) |
                           (static_cast<uint32_t>(family) << 1) |
                           static_cast<uint32_t>(add),
                       node};
  }

  /// Per-worker output and scratch of the parallel phase. The arena is
  /// exclusively owned by one worker per sample (ParallelFor chunk c runs
  /// on worker c) and holds the per-chunk clamp/skip columns plus the
  /// candidate-walk distance columns, all allocated once per chunk; the
  /// walk pointers below alias into it and are rewritten by every
  /// ProcessChunk call.
  struct WorkerScratch {
    std::vector<MemberEvent> events;
    int64_t touched = 0;
    FrameArena chunk_arena;
    double* walk_old_side = nullptr;
    double* walk_new_flip = nullptr;
  };

  IncrementalEvaluator(const Rect& world, int32_t num_nodes, EvalMode mode,
                       QueryIndex query_index);

  /// Runs the clamp + clearance-skip kernels over node rows [begin, end),
  /// then walks the nodes whose skip test failed as one deferred batch
  /// (ApplyEvents sorts each event bucket by node, so the walk schedule
  /// never shows in the output).
  void ProcessChunk(int64_t begin, int64_t end, const double* truth_x,
                    const double* truth_y, const double* believed_x,
                    const double* believed_y, const uint8_t* believed_known,
                    WorkerScratch* ws);
  /// Re-walks one family of one node after a failed (or disabled) skip
  /// test; updates the family's columns. `new_cell` is the query-index
  /// cell of new_pos (-1 when !new_present), precomputed by the driver.
  void WalkFamily(Family family, NodeId id, bool new_present, Point new_pos,
                  int32_t new_cell, WorkerScratch* ws);
  /// Emits membership-flip events for the move old -> new and returns the
  /// clearance of `new_pos` in its cell (computed inside the same pass over
  /// the cell's candidate lists; 0.0 when !new_present). Maintains the
  /// family's cached cell id.
  double WalkCandidates(Family family, NodeId id, bool old_present,
                        Point old_pos, bool new_present, Point new_pos,
                        int32_t new_cell, WorkerScratch* ws);
  void ApplyEvents(const std::vector<WorkerScratch>& scratch);

  Rect world_;
  int32_t num_nodes_;
  EvalMode mode_;
  QueryIndex query_index_;
  /// world_'s Rect::Clamp bounds, precomputed for the ClampPoints kernel.
  kernels::ClampSpec clamp_spec_;

  /// Dense query state; ids are registration order.
  std::vector<Rect> queries_;
  std::vector<char> active_;
  /// Truth member-set sizes, maintained as counters. The truth sets are
  /// only ever consumed as a size (Evaluate) and a membership test
  /// (ApplyEvents' in_other), and the test is answered geometrically
  /// against the authoritative truth columns -- `present && Contains(pos)`
  /// equals list membership at all times -- so no truth lists are stored or
  /// rebuilt.
  std::vector<int32_t> truth_size_;
  /// believed_members_[q]: current believed member ids, ascending (Evaluate
  /// streams them to sum the per-node distance terms in ascending-id
  /// order, which the determinism contract requires).
  std::vector<std::vector<NodeId>> believed_members_;
  /// |truth(q) symmetric-difference believed(q)|, maintained exactly.
  std::vector<int32_t> sym_diff_;

  /// Per-family per-node walk state columns: authoritative clamped
  /// position, the reference point of the last candidate walk, the L1
  /// clearance ball that walk certified (largest displacement from ref that
  /// provably flips no membership; 0 disables skipping), and the cached
  /// query-index cell (>= 0 only while the ball provably keeps the cell
  /// assignment, so a later walk can skip CellIndexOf's floor arithmetic).
  std::array<NodeColumns, 2> cols_;
  /// Distance(believed, truth) per believed-known node, refreshed each
  /// sample; summed per query in ascending id order by Evaluate.
  std::vector<double> node_distance_;

  /// Per-worker scratch, kept across samples so steady-state samples do no
  /// heap allocation (events keep their capacity, arenas their block).
  std::vector<WorkerScratch> scratch_;
  /// AoS-overload staging columns, reused across samples.
  std::vector<double> stage_tx_;
  std::vector<double> stage_ty_;
  std::vector<double> stage_bx_;
  std::vector<double> stage_by_;

  /// ApplyEvents scratch, kept across samples to avoid reallocation:
  /// counting-sort bucket boundaries ((query, family) keys), the regrouped
  /// event buffer, and the member-merge output (swapped with the live
  /// member vector per bucket).
  std::vector<uint32_t> event_starts_;
  std::vector<MemberEvent> sorted_events_;
  std::vector<NodeId> merge_buf_;

  /// kFullRescan state: the original snapshot indexes.
  std::optional<GridIndex> truth_index_;
  std::optional<GridIndex> believed_index_;

  int64_t deltas_applied_ = 0;
  int64_t queries_touched_ = 0;
  /// False until the first ApplySample: lets Create's bulk AddQuery loop
  /// skip the per-query clearance-column reset (everything is still zero).
  bool sample_seen_ = false;
};

}  // namespace lira

#endif  // LIRA_CQ_INCREMENTAL_EVALUATOR_H_
