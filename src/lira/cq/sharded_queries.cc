#include "lira/cq/sharded_queries.h"

#include <algorithm>

#include "lira/common/check.h"

namespace lira {

void ShardedQueryTable::Build(const QueryRegistry& registry,
                              const std::vector<Rect>& shard_strips,
                              double margin) {
  LIRA_CHECK(margin >= 0.0);
  shards_.assign(shard_strips.size(), {});
  for (size_t k = 0; k < shard_strips.size(); ++k) {
    const Rect& strip = shard_strips[k];
    const Rect expanded{strip.min_x - margin, strip.min_y - margin,
                        strip.max_x + margin, strip.max_y + margin};
    for (const RangeQuery& q : registry.queries()) {
      // Closed intersection: a query flush against a strip border must be
      // installed on both sides -- a believed position exactly on the
      // half-open boundary belongs to the right-hand strip, but the node
      // reporting it may be owned by either shard within the margin.
      if (q.range.IntersectsClosed(expanded)) {
        shards_[k].push_back(
            ShardSubQuery{q.id, q.range.Intersection(expanded)});
      }
    }
  }
}

const ShardSubQuery* ShardedQueryTable::Find(int32_t shard,
                                             QueryId id) const {
  const std::vector<ShardSubQuery>& list = shards_[shard];
  auto it = std::lower_bound(
      list.begin(), list.end(), id,
      [](const ShardSubQuery& sq, QueryId target) { return sq.id < target; });
  if (it == list.end() || it->id != id) {
    return nullptr;
  }
  return &*it;
}

int64_t ShardedQueryTable::TotalInstalled() const {
  int64_t total = 0;
  for (const auto& list : shards_) {
    total += static_cast<int64_t>(list.size());
  }
  return total;
}

std::vector<NodeId> MergeSortedUnion(
    const std::vector<std::vector<NodeId>>& lists) {
  std::vector<NodeId> merged;
  for (const std::vector<NodeId>& list : lists) {
    if (list.empty()) {
      continue;
    }
    if (merged.empty()) {
      merged = list;
      continue;
    }
    std::vector<NodeId> next;
    next.reserve(merged.size() + list.size());
    size_t i = 0, j = 0;
    while (i < merged.size() && j < list.size()) {
      if (merged[i] < list[j]) {
        next.push_back(merged[i++]);
      } else if (list[j] < merged[i]) {
        next.push_back(list[j++]);
      } else {
        next.push_back(merged[i]);
        ++i;
        ++j;
      }
    }
    next.insert(next.end(), merged.begin() + i, merged.end());
    next.insert(next.end(), list.begin() + j, list.end());
    merged = std::move(next);
  }
  return merged;
}

}  // namespace lira
