#include "lira/cq/incremental_evaluator.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "lira/common/check.h"

namespace lira {
namespace {

constexpr int64_t kNodeGrain = 256;

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const Rect& world,
                                           int32_t num_nodes, EvalMode mode,
                                           QueryIndex query_index)
    : world_(world),
      num_nodes_(num_nodes),
      mode_(mode),
      query_index_(std::move(query_index)),
      clamp_spec_{world.min_x, world.min_y, world.clamp_hi_x(),
                  world.clamp_hi_y()},
      node_distance_(num_nodes, 0.0) {
  cols_[kTruth].Resize(num_nodes);
  cols_[kBelieved].Resize(num_nodes);
}

StatusOr<IncrementalEvaluator> IncrementalEvaluator::Create(
    const Rect& world, int32_t cells_per_side, int32_t num_nodes,
    const QueryRegistry& registry, EvalMode mode, double margin) {
  if (num_nodes < 0) {
    return InvalidArgumentError("num_nodes must be non-negative");
  }
  if (margin < 0.0 && cells_per_side >= 1) {
    margin = std::min(world.width(), world.height()) /
             static_cast<double>(cells_per_side) / 8.0;
  }
  auto query_index = QueryIndex::Create(world, cells_per_side, margin);
  if (!query_index.ok()) {
    return query_index.status();
  }
  IncrementalEvaluator evaluator(world, num_nodes, mode,
                                 *std::move(query_index));
  if (mode == EvalMode::kFullRescan) {
    auto truth = GridIndex::Create(world, cells_per_side, num_nodes);
    if (!truth.ok()) {
      return truth.status();
    }
    auto believed = GridIndex::Create(world, cells_per_side, num_nodes);
    if (!believed.ok()) {
      return believed.status();
    }
    evaluator.truth_index_.emplace(*std::move(truth));
    evaluator.believed_index_.emplace(*std::move(believed));
  }
  for (const RangeQuery& q : registry.queries()) {
    evaluator.AddQuery(q.range);
  }
  return evaluator;
}

QueryId IncrementalEvaluator::AddQuery(const Rect& range) {
  // MemberEvent packs the query id into 30 bits of its tag.
  LIRA_CHECK(queries_.size() < (1u << 29));
  const auto id = static_cast<QueryId>(queries_.size());
  queries_.push_back(range);
  active_.push_back(1);
  sym_diff_.push_back(0);
  truth_size_.push_back(0);
  believed_members_.emplace_back();
  if (mode_ == EvalMode::kFullRescan) {
    return id;
  }
  query_index_.Insert(id, range);
  // Seed the member state from the stored positions (ascending ids, so the
  // believed vector comes out sorted) and count the symmetric difference
  // directly.
  std::vector<NodeId>& believed = believed_members_[id];
  const NodeColumns& tc = cols_[kTruth];
  const NodeColumns& bc = cols_[kBelieved];
  int32_t truth_count = 0;
  int32_t sym = 0;
  for (NodeId node = 0; node < num_nodes_; ++node) {
    const bool in_truth =
        tc.present[node] != 0 &&
        range.Contains(Point{tc.pos_x[node], tc.pos_y[node]});
    const bool in_believed =
        bc.present[node] != 0 &&
        range.Contains(Point{bc.pos_x[node], bc.pos_y[node]});
    if (in_truth) {
      ++truth_count;
    }
    if (in_believed) {
      believed.push_back(node);
    }
    if (in_truth != in_believed) {
      ++sym;
    }
  }
  truth_size_[id] = truth_count;
  sym_diff_[id] = sym;
  // A new boundary can cut into existing clearance balls; force fresh
  // walks. (The cached cells stay valid: they certify the cell assignment,
  // which no query can change.) Before the first sample every clearance is
  // still zero, so Create's bulk registration skips the two column fills.
  if (sample_seen_) {
    std::fill(cols_[kTruth].clearance.begin(), cols_[kTruth].clearance.end(),
              0.0);
    std::fill(cols_[kBelieved].clearance.begin(),
              cols_[kBelieved].clearance.end(), 0.0);
  }
  return id;
}

void IncrementalEvaluator::RemoveQuery(QueryId id) {
  LIRA_CHECK(id >= 0 && id < num_queries());
  if (active_[id] == 0) {
    return;
  }
  active_[id] = 0;
  if (mode_ == EvalMode::kIncremental) {
    query_index_.Erase(id, queries_[id]);
  }
  // Removal only loosens clearance constraints, so stale (tighter)
  // clearances stay sound and need no reset.
  truth_size_[id] = 0;
  believed_members_[id].clear();
  sym_diff_[id] = 0;
}

namespace {

/// L1 displacement from `p` below which membership in `range` provably
/// cannot flip. Inside: the exit distance to the nearest range edge
/// (displacements strictly below it keep p >= min (closed) and p < max
/// (open) on both axes). Outside: the entry distance -- every violated axis
/// gap must close, and the gaps are disjoint displacement components, so
/// L1 >= gx + gy is needed. A gap of exactly 0 on a max edge (p.x == max_x,
/// outside by half-openness) yields 0 and disables skipping -- conservative.
/// The RectWalkDistances kernel computes this identical arithmetic
/// branchlessly for the same-cell walk.
double FlipDistance(const Rect& range, Point p, bool inside) {
  if (inside) {
    return std::min(std::min(p.x - range.min_x, range.max_x - p.x),
                    std::min(p.y - range.min_y, range.max_y - p.y));
  }
  double gx = 0.0;
  double gy = 0.0;
  if (p.x < range.min_x) {
    gx = range.min_x - p.x;
  } else if (p.x >= range.max_x) {
    gx = p.x - range.max_x;
  }
  if (p.y < range.min_y) {
    gy = range.min_y - p.y;
  } else if (p.y >= range.max_y) {
    gy = p.y - range.max_y;
  }
  return gx + gy;
}

}  // namespace

namespace {

// Namespace scope (not function-local statics): the hot path must not pay
// a thread-safe-initialization guard per call.
const QueryIndex::CellPartials kNoPartial;
const std::vector<QueryId> kNoFull;

}  // namespace

double IncrementalEvaluator::WalkCandidates(Family family, NodeId id,
                                            bool old_present, Point old_pos,
                                            bool new_present, Point new_pos,
                                            int32_t new_cell,
                                            WorkerScratch* ws) {
  NodeColumns& cols = cols_[family];
  // The cached cell (>= 0 only while the clearance ball provably kept the
  // floor-arithmetic cell assignment) saves recomputing CellIndexOf for the
  // old position; when it was invalidated -- the ball leaned on the index
  // margin and could cross the cell boundary -- fall back to the floor
  // arithmetic, exactly as if nothing were cached.
  int32_t co = -1;
  if (old_present) {
    co = cols.cell[id];
    if (co < 0) {
      co = query_index_.CellIndexOf(old_pos);
    }
  }
  const int32_t cn = new_cell;
  // The new position's clearance is folded into the same pass that walks
  // the candidate lists. Candidate completeness within the ball is
  // certified two ways, and the looser one wins: staying inside the cell
  // (distance to the cell boundary, minus the FP slack that absorbs the
  // few-ulp floor-arithmetic disagreement), or staying within the index
  // margin -- every query within L1 distance margin() of the cell is
  // already in its lists, so a ball of that radius may leave the cell.
  double clearance = 0.0;
  double cell_bound = 0.0;
  if (cn >= 0) {
    const Rect cr = query_index_.CellRectOf(cn);
    cell_bound =
        std::min(std::min(new_pos.x - cr.min_x, cr.max_x - new_pos.x),
                 std::min(new_pos.y - cr.min_y, cr.max_y - new_pos.y)) -
        query_index_.fp_slack();
    clearance = std::max(cell_bound, query_index_.margin());
  }
  if (co == cn) {
    // Same cell: queries fully covering it stay members; only partials can
    // flip. Stream the cell's rect columns through the kernel (into the
    // per-chunk walk columns), then emit events and take the clearance min
    // in list order -- identical evaluation order to the scalar loop. The
    // kernel's sign encoding is exact: fabs recovers FlipDistance's bits,
    // signbit the containment (kernels.h).
    const QueryIndex::CellPartials& pl = query_index_.Partial(co);
    const auto n = static_cast<int64_t>(pl.size());
    if (n > 0) {
      double* fo = ws->walk_old_side;
      double* fn = ws->walk_new_flip;
      kernels::RectWalkDistances(n, pl.min_x.data(), pl.min_y.data(),
                                 pl.max_x.data(), pl.max_y.data(), old_pos.x,
                                 old_pos.y, new_pos.x, new_pos.y, fo, fn);
      ws->touched += n;
      // Two min accumulators break the loop-carried min dependency chain
      // (the loop's only serial constraint). A min over non-negative,
      // NaN-free values selects the smallest element whatever the grouping
      // -- fabs never yields -0.0 -- so the combined result is bitwise
      // identical to the single-chain reduction.
      double mn0 = clearance;
      double mn1 = std::numeric_limits<double>::infinity();
      int64_t i = 0;
      for (; i + 1 < n; i += 2) {
        const bool in_new0 = !std::signbit(fn[i]);
        if (!std::signbit(fo[i]) != in_new0) {
          ws->events.push_back(MakeEvent(pl.id[i], id, family, in_new0));
        }
        const bool in_new1 = !std::signbit(fn[i + 1]);
        if (!std::signbit(fo[i + 1]) != in_new1) {
          ws->events.push_back(MakeEvent(pl.id[i + 1], id, family, in_new1));
        }
        mn0 = std::min(mn0, std::fabs(fn[i]));
        mn1 = std::min(mn1, std::fabs(fn[i + 1]));
      }
      if (i < n) {
        const bool in_new = !std::signbit(fn[i]);
        if (!std::signbit(fo[i]) != in_new) {
          ws->events.push_back(MakeEvent(pl.id[i], id, family, in_new));
        }
        mn0 = std::min(mn0, std::fabs(fn[i]));
      }
      clearance = std::min(mn0, mn1);
    }
    const double out = std::max(clearance, 0.0);
    cols.cell[id] = out <= cell_bound ? cn : -1;
    return out;
  }
  const QueryIndex::CellPartials& partial_old =
      co >= 0 ? query_index_.Partial(co) : kNoPartial;
  const std::vector<QueryId>& full_old =
      co >= 0 ? query_index_.Full(co) : kNoFull;
  const QueryIndex::CellPartials& partial_new =
      cn >= 0 ? query_index_.Partial(cn) : kNoPartial;
  const std::vector<QueryId>& full_new =
      cn >= 0 ? query_index_.Full(cn) : kNoFull;
  // Four-way sorted merge over the union of candidate ids. A query absent
  // from a cell's lists cannot contain any position assigned to that cell
  // (QueryIndex coverage guarantee), so membership on that side is false.
  size_t ipo = 0;
  size_t ifo = 0;
  size_t ipn = 0;
  size_t ifn = 0;
  while (true) {
    QueryId q = std::numeric_limits<QueryId>::max();
    if (ipo < partial_old.size()) {
      q = std::min(q, partial_old.id[ipo]);
    }
    if (ifo < full_old.size()) {
      q = std::min(q, full_old[ifo]);
    }
    if (ipn < partial_new.size()) {
      q = std::min(q, partial_new.id[ipn]);
    }
    if (ifn < full_new.size()) {
      q = std::min(q, full_new[ifn]);
    }
    if (q == std::numeric_limits<QueryId>::max()) {
      break;
    }
    const bool covers_old = ifo < full_old.size() && full_old[ifo] == q;
    if (covers_old) {
      ++ifo;
    }
    bool has_range_old = false;
    size_t range_old = 0;
    if (ipo < partial_old.size() && partial_old.id[ipo] == q) {
      has_range_old = true;
      range_old = ipo;
      ++ipo;
    }
    const bool covers_new = ifn < full_new.size() && full_new[ifn] == q;
    if (covers_new) {
      ++ifn;
    }
    bool has_range_new = false;
    size_t range_new = 0;
    if (ipn < partial_new.size() && partial_new.id[ipn] == q) {
      has_range_new = true;
      range_new = ipn;
      ++ipn;
    }
    ++ws->touched;
    bool in_partial_new = false;
    if (has_range_new) {
      const Rect r = partial_new.RectAt(range_new);
      in_partial_new = r.Contains(new_pos);
      // Only the new cell's partial entries bound the clearance: its full
      // entries cannot flip while the node stays in the cell, and the
      // cell-boundary term already guards the cell assignment.
      clearance =
          std::min(clearance, FlipDistance(r, new_pos, in_partial_new));
    }
    const bool in_old =
        old_present &&
        (covers_old || (has_range_old &&
                        partial_old.RectAt(range_old).Contains(old_pos)));
    const bool in_new = new_present && (covers_new || in_partial_new);
    if (in_old != in_new) {
      ws->events.push_back(MakeEvent(q, id, family, in_new));
    }
  }
  const double out = cn >= 0 ? std::max(clearance, 0.0) : 0.0;
  cols.cell[id] = (cn >= 0 && out <= cell_bound) ? cn : -1;
  return out;
}

void IncrementalEvaluator::WalkFamily(Family family, NodeId id,
                                      bool new_present, Point new_pos,
                                      int32_t new_cell, WorkerScratch* ws) {
  NodeColumns& cols = cols_[family];
  const bool old_present = cols.present[id] != 0;
  const Point old_pos{cols.pos_x[id], cols.pos_y[id]};
  cols.clearance[id] = WalkCandidates(family, id, old_present, old_pos,
                                      new_present, new_pos, new_cell, ws);
  cols.present[id] = new_present ? 1 : 0;
  cols.pos_x[id] = new_pos.x;
  cols.pos_y[id] = new_pos.y;
  cols.ref_x[id] = new_pos.x;
  cols.ref_y[id] = new_pos.y;
}

void IncrementalEvaluator::ProcessChunk(
    int64_t begin, int64_t end, const double* truth_x, const double* truth_y,
    const double* believed_x, const double* believed_y,
    const uint8_t* believed_known, WorkerScratch* ws) {
  const int64_t n = end - begin;
  NodeColumns& tc = cols_[kTruth];
  NodeColumns& bc = cols_[kBelieved];
  // Kernel pre-passes over the whole chunk: clamp the incoming positions
  // into the world (bit-identical to Rect::Clamp) and test every node
  // against its clearance ball. Unknown believed lanes get clamped too --
  // harmless, their skip lanes come out 0 and the values are never read.
  FrameArena& arena = ws->chunk_arena;
  arena.Reset();
  double* ctx = arena.AllocSpan<double>(n);
  double* cty = arena.AllocSpan<double>(n);
  double* cbx = arena.AllocSpan<double>(n);
  double* cby = arena.AllocSpan<double>(n);
  uint8_t* skip_t = arena.AllocSpan<uint8_t>(n);
  uint8_t* skip_b = arena.AllocSpan<uint8_t>(n);
  // Candidate-walk distance columns, sized by the index's partial-list high
  // watermark so every walk in the chunk reuses them (queries cannot be
  // added mid-sample).
  const auto walk_n = static_cast<int64_t>(query_index_.max_partial_size());
  ws->walk_old_side = arena.AllocSpan<double>(walk_n);
  ws->walk_new_flip = arena.AllocSpan<double>(walk_n);
  // Deferred-walk keys: (new cell + 1, node, family) packed into one word.
  // Collecting the walks first and running them as a batch keeps the
  // bookkeeping loop's working set small and measures ~10% faster than
  // walking inline. Walk order is immaterial to the output: a walk reads
  // only the immutable query index and its own node's column slots, and
  // ApplyEvents re-sorts every (query, family) bucket by node, so the
  // applied event stream is independent of walk schedule and thread count.
  // (Sorting the batch by cell to reuse hot candidate lists was tried and
  // lost: scattering the node-column accesses costs more than the list
  // locality buys at these list sizes.)
  uint64_t* walk_keys = arena.AllocSpan<uint64_t>(2 * n);
  int64_t num_walks = 0;
  kernels::ClampPoints(n, truth_x + begin, truth_y + begin, clamp_spec_, ctx,
                       cty);
  kernels::ClampPoints(n, believed_x + begin, believed_y + begin, clamp_spec_,
                       cbx, cby);
  kernels::L1SkipMask(n, ctx, cty, tc.ref_x.data() + begin,
                      tc.ref_y.data() + begin, tc.clearance.data() + begin,
                      tc.present.data() + begin, /*new_present=*/nullptr,
                      skip_t);
  kernels::L1SkipMask(n, cbx, cby, bc.ref_x.data() + begin,
                      bc.ref_y.data() + begin, bc.clearance.data() + begin,
                      bc.present.data() + begin, believed_known + begin,
                      skip_b);
  // Scalar driver: per-node bookkeeping inline, walks deferred and keyed
  // by destination cell.
  for (int64_t i = 0; i < n; ++i) {
    const auto id = static_cast<NodeId>(begin + i);
    const Point new_truth{ctx[i], cty[i]};
    const bool known = believed_known[id] != 0;
    Point new_believed{};
    if (known) {
      new_believed = Point{cbx[i], cby[i]};
      // Same expression, argument order, and clamping as CompareQuery's
      // Distance(believed.PositionOf(id), truth.PositionOf(id)).
      node_distance_[id] = Distance(new_believed, new_truth);
    }
    if (skip_t[i] != 0) {
      // Still inside the ball certified by the last walk: same candidate
      // lists, no membership flips possible.
      tc.pos_x[id] = new_truth.x;
      tc.pos_y[id] = new_truth.y;
    } else {
      const int32_t cell = query_index_.CellIndexOf(new_truth);
      walk_keys[num_walks++] =
          (static_cast<uint64_t>(cell + 1) << 33) |
          (static_cast<uint64_t>(static_cast<uint32_t>(id)) << 1) |
          static_cast<uint64_t>(kTruth);
    }
    if (skip_b[i] != 0) {
      bc.pos_x[id] = new_believed.x;
      bc.pos_y[id] = new_believed.y;
    } else if (bc.present[id] != 0 || known) {
      const int32_t cell = known ? query_index_.CellIndexOf(new_believed) : -1;
      walk_keys[num_walks++] =
          (static_cast<uint64_t>(cell + 1) << 33) |
          (static_cast<uint64_t>(static_cast<uint32_t>(id)) << 1) |
          static_cast<uint64_t>(kBelieved);
    }
  }
  for (int64_t w = 0; w < num_walks; ++w) {
    const uint64_t key = walk_keys[w];
    const auto family = static_cast<Family>(key & 1);
    const auto id = static_cast<NodeId>((key >> 1) & 0xFFFFFFFFu);
    const auto cell = static_cast<int32_t>(key >> 33) - 1;
    const int64_t i = id - begin;
    if (family == kTruth) {
      WalkFamily(kTruth, id, /*new_present=*/true, Point{ctx[i], cty[i]},
                 cell, ws);
    } else {
      const bool known = believed_known[id] != 0;
      const Point new_believed =
          known ? Point{cbx[i], cby[i]} : Point{};
      WalkFamily(kBelieved, id, known, new_believed, cell, ws);
    }
  }
}

void IncrementalEvaluator::ApplyEvents(
    const std::vector<WorkerScratch>& scratch) {
  size_t total = 0;
  for (const WorkerScratch& ws : scratch) {
    total += ws.events.size();
    queries_touched_ += ws.touched;
  }
  deltas_applied_ += static_cast<int64_t>(total);
  if (total == 0) {
    return;
  }
  // Group events by (query, family) with a stable counting sort, then apply
  // each bucket in one go: both member vectors of a query are loaded into
  // cache exactly once instead of once per event. Any fixed application
  // order yields the same final state -- member sets are sorted id sets, and
  // the sym_diff update below maintains its invariant exactly at every step
  // -- so regrouping preserves bitwise output; the sort must merely be
  // deterministic, which counting sort over deterministic inputs is.
  // The (query, family) key is simply tag >> 1.
  const size_t num_keys = queries_.size() * 2;
  event_starts_.assign(num_keys + 1, 0);
  for (const WorkerScratch& ws : scratch) {
    for (const MemberEvent& ev : ws.events) {
      ++event_starts_[(ev.tag >> 1) + 1];
    }
  }
  for (size_t k = 0; k < num_keys; ++k) {
    event_starts_[k + 1] += event_starts_[k];
  }
  sorted_events_.resize(total);
  // Scattering with event_starts_[key]++ leaves event_starts_[key] holding
  // the END of bucket `key` (the classic in-place counting-sort shift).
  for (const WorkerScratch& ws : scratch) {
    for (const MemberEvent& ev : ws.events) {
      sorted_events_[event_starts_[ev.tag >> 1]++] = ev;
    }
  }
  // The sym_diff update needs in_other, the other family's membership of
  // the event's node at application time. It is answered geometrically: at
  // this point both families' columns hold the sample's final clamped
  // positions, and `present && Contains(pos)` equals list membership at all
  // times (walked nodes were classified by this very test -- the kernel sign
  // encoding and the full-coverage guarantee are both exact -- and a skipped
  // node's clearance ball certifies that no membership flipped, so the
  // stale membership still agrees with the fresh position). The one wrinkle
  // is membership *when*: the chosen logical order applies, per (query,
  // node), the believed event before the truth event. So truth events see
  // the believed columns as-is (final state), while believed events must
  // un-flip the truth test when this sample also carries a truth event for
  // the same (query, node) -- detected by streaming the adjacent truth
  // bucket, which shares the ascending node order.
  const NodeColumns& tc = cols_[kTruth];
  const NodeColumns& bc = cols_[kBelieved];
  for (size_t key = 0; key < num_keys; ++key) {
    const uint32_t begin = key == 0 ? 0 : event_starts_[key - 1];
    const uint32_t end = event_starts_[key];
    if (begin == end) {
      continue;
    }
    const auto query = static_cast<QueryId>(key / 2);
    // Walks run in cell order, so a bucket's events arrive unordered;
    // sorting by node (ids are unique within a bucket) restores the one
    // canonical order the merge below and the bitwise contract rely on,
    // whatever the walk schedule or thread count did.
    std::sort(sorted_events_.begin() + begin, sorted_events_.begin() + end,
              [](const MemberEvent& a, const MemberEvent& b) {
                return a.node < b.node;
              });
    const Rect range = queries_[query];
    int32_t sym = sym_diff_[query];
    if (key % 2 == static_cast<size_t>(kTruth)) {
      // Truth member sets are consumed only as a size (Evaluate) and as the
      // geometric membership test above, so no list exists to rebuild --
      // truth events just bump the counter. This halves the bandwidth of
      // the whole ApplyEvents pass, which is dominated by member-vector
      // rebuild traffic.
      int32_t count = truth_size_[query];
      for (uint32_t i = begin; i < end; ++i) {
        const MemberEvent& ev = sorted_events_[i];
        LIRA_DCHECK(i == begin || sorted_events_[i - 1].node < ev.node);
        const NodeId v = ev.node;
        const bool in_other =
            bc.present[v] != 0 &&
            range.Contains(Point{bc.pos_x[v], bc.pos_y[v]});
        if ((ev.tag & 1) != 0) {
          ++count;
          sym += in_other ? -1 : 1;
        } else {
          --count;
          sym += in_other ? 1 : -1;
        }
      }
      LIRA_DCHECK(count >= 0);
      truth_size_[query] = count;
    } else {
      // A node walks at most once per family per sample, so the bucket
      // holds at most one event per node, ascending after the sort above.
      // Rebuilding the sorted believed member vector with one linear merge
      // is O(members + events) for the whole bucket, where per-event
      // lower_bound + insert would memmove O(members) each time; same final
      // set, so bitwise output is unaffected. The unchanged runs between
      // event positions move as bulk memmoves, and the ascending event
      // order lets every search resume from the previous position. (A
      // deferred-overlay variant -- pending ops folded in lazily -- was
      // tried and lost: the rebuild is memcpy-bound and cheap, while the
      // overlay taxed every Evaluate with a second merge stream.)
      std::vector<NodeId>& mine = believed_members_[query];
      // This query's truth bucket (key - 1): one resuming pointer detects
      // same-node truth events for the in_other un-flip.
      const uint32_t t_begin = key == 1 ? 0 : event_starts_[key - 2];
      const uint32_t t_end = event_starts_[key - 1];
      uint32_t ti = t_begin;
      merge_buf_.clear();
      merge_buf_.reserve(mine.size() + (end - begin));
      size_t m = 0;
      for (uint32_t i = begin; i < end; ++i) {
        const MemberEvent& ev = sorted_events_[i];
        LIRA_DCHECK(i == begin || sorted_events_[i - 1].node < ev.node);
        const NodeId v = ev.node;
        const auto pos = static_cast<size_t>(
            std::lower_bound(mine.begin() + static_cast<ptrdiff_t>(m),
                             mine.end(), v) -
            mine.begin());
        merge_buf_.insert(merge_buf_.end(),
                          mine.begin() + static_cast<ptrdiff_t>(m),
                          mine.begin() + static_cast<ptrdiff_t>(pos));
        m = pos;
        while (ti < t_end && sorted_events_[ti].node < v) {
          ++ti;
        }
        const bool truth_flipped = ti < t_end && sorted_events_[ti].node == v;
        const bool truth_now =
            tc.present[v] != 0 &&
            range.Contains(Point{tc.pos_x[v], tc.pos_y[v]});
        const bool in_other = truth_now != truth_flipped;
        if ((ev.tag & 1) != 0) {
          LIRA_DCHECK(m == mine.size() || mine[m] != v);
          merge_buf_.push_back(v);
          sym += in_other ? -1 : 1;
        } else {
          LIRA_DCHECK(m < mine.size() && mine[m] == v);
          ++m;  // removed
          sym += in_other ? 1 : -1;
        }
      }
      merge_buf_.insert(merge_buf_.end(),
                        mine.begin() + static_cast<ptrdiff_t>(m), mine.end());
      mine.swap(merge_buf_);
    }
    sym_diff_[query] = sym;
  }
#ifndef NDEBUG
  // A query's sym_diff may transiently dip below zero after its truth
  // bucket alone (the physical bucket order differs from the logical
  // per-node order the deltas were computed for), but once both buckets are
  // in, every counter must again be a valid |truth SYMDIFF believed|.
  for (size_t q = 0; q < queries_.size(); ++q) {
    LIRA_DCHECK(sym_diff_[q] >= 0);
  }
#endif
}

void IncrementalEvaluator::ApplySample(const double* truth_x,
                                       const double* truth_y,
                                       const double* believed_x,
                                       const double* believed_y,
                                       const uint8_t* believed_known,
                                       ThreadPool* pool) {
  if (mode_ == EvalMode::kFullRescan) {
    // The original serial snapshot maintenance, verbatim.
    for (NodeId id = 0; id < num_nodes_; ++id) {
      truth_index_->Update(id, Point{truth_x[id], truth_y[id]});
      if (believed_known[id] != 0) {
        believed_index_->Update(id, Point{believed_x[id], believed_y[id]});
      } else {
        believed_index_->Remove(id);
      }
    }
    return;
  }
  sample_seen_ = true;
  const int32_t workers =
      (pool == nullptr || pool->num_threads() <= 1) ? 1 : pool->num_threads();
  if (static_cast<int32_t>(scratch_.size()) < workers) {
    scratch_.resize(workers);
  }
  for (WorkerScratch& ws : scratch_) {
    ws.events.clear();
    ws.touched = 0;
  }
  if (workers == 1) {
    ProcessChunk(0, num_nodes_, truth_x, truth_y, believed_x, believed_y,
                 believed_known, &scratch_[0]);
  } else {
    // Parallel phase: per-node column slots and per-worker buffers only.
    // Chunks are contiguous ascending, so applying buffers in chunk order
    // afterwards replays the events in ascending node order for any thread
    // count.
    pool->ParallelFor(0, num_nodes_, kNodeGrain,
                      [&](int32_t chunk, int64_t begin, int64_t end) {
                        ProcessChunk(begin, end, truth_x, truth_y, believed_x,
                                     believed_y, believed_known,
                                     &scratch_[chunk]);
                      });
  }
  ApplyEvents(scratch_);
}

void IncrementalEvaluator::ApplySample(
    const std::vector<Point>& truth_positions,
    const std::vector<Point>& believed_positions,
    const std::vector<char>& believed_known, ThreadPool* pool) {
  LIRA_CHECK(static_cast<int32_t>(truth_positions.size()) == num_nodes_);
  LIRA_CHECK(static_cast<int32_t>(believed_positions.size()) == num_nodes_);
  LIRA_CHECK(static_cast<int32_t>(believed_known.size()) == num_nodes_);
  stage_tx_.resize(num_nodes_);
  stage_ty_.resize(num_nodes_);
  stage_bx_.resize(num_nodes_);
  stage_by_.resize(num_nodes_);
  for (int32_t i = 0; i < num_nodes_; ++i) {
    stage_tx_[i] = truth_positions[i].x;
    stage_ty_[i] = truth_positions[i].y;
    stage_bx_[i] = believed_positions[i].x;
    stage_by_[i] = believed_positions[i].y;
  }
  ApplySample(stage_tx_.data(), stage_ty_.data(), stage_bx_.data(),
              stage_by_.data(),
              reinterpret_cast<const uint8_t*>(believed_known.data()), pool);
}

std::vector<QueryAccuracy> IncrementalEvaluator::Evaluate(ThreadPool* pool) {
  std::vector<QueryAccuracy> out(queries_.size());
  if (mode_ == EvalMode::kFullRescan) {
    const auto eval_one = [&](QueryId q, QueryEvalScratch* scratch) {
      if (active_[q] != 0) {
        out[q] = CompareQuery(*truth_index_, *believed_index_, queries_[q],
                              scratch);
      }
    };
    if (pool == nullptr || pool->num_threads() <= 1) {
      QueryEvalScratch scratch;
      for (QueryId q = 0; q < num_queries(); ++q) {
        eval_one(q, &scratch);
      }
      return out;
    }
    std::vector<QueryEvalScratch> scratch(pool->num_threads());
    pool->ParallelFor(0, num_queries(), /*grain=*/1,
                      [&](int32_t chunk, int64_t begin, int64_t end) {
                        for (int64_t q = begin; q < end; ++q) {
                          eval_one(static_cast<QueryId>(q), &scratch[chunk]);
                        }
                      });
    return out;
  }
  // Position-error sums are latency-bound: each query's ascending-id
  // summation (the order CompareQuery fixes, which the bitwise contract
  // pins) is one serial FP-add dependency chain. Interleaving two queries'
  // sums keeps two independent chains in flight, nearly doubling
  // throughput, while every individual query still accumulates its own
  // terms in exactly the contractual order -- the pairing changes which
  // instructions neighbour each other, not any query's arithmetic.
  const auto sum_pair = [&](QueryId qa, QueryId qb) {
    const std::vector<NodeId>& a = believed_members_[qa];
    const std::vector<NodeId>& b = believed_members_[qb];
    const size_t shared = std::min(a.size(), b.size());
    double ta = 0.0;
    double tb = 0.0;
    for (size_t i = 0; i < shared; ++i) {
      ta += node_distance_[a[i]];
      tb += node_distance_[b[i]];
    }
    for (size_t i = shared; i < a.size(); ++i) {
      ta += node_distance_[a[i]];
    }
    for (size_t i = shared; i < b.size(); ++i) {
      tb += node_distance_[b[i]];
    }
    out[qa].position_error = ta / static_cast<double>(a.size());
    out[qb].position_error = tb / static_cast<double>(b.size());
  };
  const auto eval_range = [&](int64_t begin, int64_t end) {
    QueryId pending = -1;
    for (int64_t i = begin; i < end; ++i) {
      const auto q = static_cast<QueryId>(i);
      if (active_[q] == 0) {
        continue;
      }
      const std::vector<NodeId>& believed = believed_members_[q];
      QueryAccuracy acc;
      acc.truth_size = truth_size_[q];
      acc.believed_size = static_cast<int32_t>(believed.size());
      acc.containment_error =
          static_cast<double>(sym_diff_[q]) /
          static_cast<double>(std::max<int32_t>(1, acc.truth_size));
      out[q] = acc;
      if (believed.empty()) {
        continue;
      }
      if (pending < 0) {
        pending = q;
      } else {
        sum_pair(pending, q);
        pending = -1;
      }
    }
    if (pending >= 0) {
      const std::vector<NodeId>& a = believed_members_[pending];
      double total = 0.0;
      for (const NodeId id : a) {
        total += node_distance_[id];
      }
      out[pending].position_error = total / static_cast<double>(a.size());
    }
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    eval_range(0, num_queries());
    return out;
  }
  pool->ParallelFor(0, num_queries(), /*grain=*/1,
                    [&](int32_t /*chunk*/, int64_t begin, int64_t end) {
                      eval_range(begin, end);
                    });
  return out;
}

}  // namespace lira
