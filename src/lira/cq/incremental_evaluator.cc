#include "lira/cq/incremental_evaluator.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "lira/common/check.h"

namespace lira {
namespace {

constexpr int64_t kNodeGrain = 256;

double L1(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

}  // namespace

IncrementalEvaluator::IncrementalEvaluator(const Rect& world,
                                           int32_t num_nodes, EvalMode mode,
                                           QueryIndex query_index)
    : world_(world),
      num_nodes_(num_nodes),
      mode_(mode),
      query_index_(std::move(query_index)),
      node_distance_(num_nodes, 0.0) {
  state_.assign(num_nodes, {NodeState{}, NodeState{}});
}

StatusOr<IncrementalEvaluator> IncrementalEvaluator::Create(
    const Rect& world, int32_t cells_per_side, int32_t num_nodes,
    const QueryRegistry& registry, EvalMode mode, double margin) {
  if (num_nodes < 0) {
    return InvalidArgumentError("num_nodes must be non-negative");
  }
  if (margin < 0.0 && cells_per_side >= 1) {
    margin = std::min(world.width(), world.height()) /
             static_cast<double>(cells_per_side) / 8.0;
  }
  auto query_index = QueryIndex::Create(world, cells_per_side, margin);
  if (!query_index.ok()) {
    return query_index.status();
  }
  IncrementalEvaluator evaluator(world, num_nodes, mode,
                                 *std::move(query_index));
  if (mode == EvalMode::kFullRescan) {
    auto truth = GridIndex::Create(world, cells_per_side, num_nodes);
    if (!truth.ok()) {
      return truth.status();
    }
    auto believed = GridIndex::Create(world, cells_per_side, num_nodes);
    if (!believed.ok()) {
      return believed.status();
    }
    evaluator.truth_index_.emplace(*std::move(truth));
    evaluator.believed_index_.emplace(*std::move(believed));
  }
  for (const RangeQuery& q : registry.queries()) {
    evaluator.AddQuery(q.range);
  }
  return evaluator;
}

QueryId IncrementalEvaluator::AddQuery(const Rect& range) {
  const auto id = static_cast<QueryId>(queries_.size());
  queries_.push_back(range);
  active_.push_back(1);
  sym_diff_.push_back(0);
  members_[kTruth].emplace_back();
  members_[kBelieved].emplace_back();
  if (mode_ == EvalMode::kFullRescan) {
    return id;
  }
  query_index_.Insert(id, range);
  // Seed the member sets from the stored positions (ascending ids, so the
  // vectors come out sorted) and count the symmetric difference directly.
  std::vector<NodeId>& truth = members_[kTruth][id];
  std::vector<NodeId>& believed = members_[kBelieved][id];
  int32_t sym = 0;
  for (NodeId node = 0; node < num_nodes_; ++node) {
    const NodeState& truth_state = state_[node][kTruth];
    const NodeState& believed_state = state_[node][kBelieved];
    const bool in_truth =
        truth_state.present != 0 && range.Contains(truth_state.pos);
    const bool in_believed =
        believed_state.present != 0 && range.Contains(believed_state.pos);
    if (in_truth) {
      truth.push_back(node);
    }
    if (in_believed) {
      believed.push_back(node);
    }
    if (in_truth != in_believed) {
      ++sym;
    }
  }
  sym_diff_[id] = sym;
  // A new boundary can cut into existing clearance balls; force fresh walks.
  for (std::array<NodeState, 2>& node_state : state_) {
    node_state[kTruth].clearance = 0.0;
    node_state[kBelieved].clearance = 0.0;
  }
  return id;
}

void IncrementalEvaluator::RemoveQuery(QueryId id) {
  LIRA_CHECK(id >= 0 && id < num_queries());
  if (active_[id] == 0) {
    return;
  }
  active_[id] = 0;
  if (mode_ == EvalMode::kIncremental) {
    query_index_.Erase(id, queries_[id]);
  }
  // Removal only loosens clearance constraints, so stale (tighter)
  // clearances stay sound and need no reset.
  members_[kTruth][id].clear();
  members_[kBelieved][id].clear();
  sym_diff_[id] = 0;
}

namespace {

/// L1 displacement from `p` below which membership in `range` provably
/// cannot flip. Inside: the exit distance to the nearest range edge
/// (displacements strictly below it keep p >= min (closed) and p < max
/// (open) on both axes). Outside: the entry distance -- every violated axis
/// gap must close, and the gaps are disjoint displacement components, so
/// L1 >= gx + gy is needed. A gap of exactly 0 on a max edge (p.x == max_x,
/// outside by half-openness) yields 0 and disables skipping -- conservative.
double FlipDistance(const Rect& range, Point p, bool inside) {
  if (inside) {
    return std::min(std::min(p.x - range.min_x, range.max_x - p.x),
                    std::min(p.y - range.min_y, range.max_y - p.y));
  }
  double gx = 0.0;
  double gy = 0.0;
  if (p.x < range.min_x) {
    gx = range.min_x - p.x;
  } else if (p.x >= range.max_x) {
    gx = p.x - range.max_x;
  }
  if (p.y < range.min_y) {
    gy = range.min_y - p.y;
  } else if (p.y >= range.max_y) {
    gy = p.y - range.max_y;
  }
  return gx + gy;
}

}  // namespace

double IncrementalEvaluator::WalkCandidates(Family family, NodeId id,
                                            bool old_present, Point old_pos,
                                            bool new_present, Point new_pos,
                                            WorkerScratch* ws) {
  static const std::vector<QueryIndex::PartialEntry> kNoPartial;
  static const std::vector<QueryId> kNoFull;
  const int32_t co = old_present ? query_index_.CellIndexOf(old_pos) : -1;
  const int32_t cn = new_present ? query_index_.CellIndexOf(new_pos) : -1;
  // The new position's clearance is folded into the same pass that walks
  // the candidate lists. Candidate completeness within the ball is
  // certified two ways, and the looser one wins: staying inside the cell
  // (distance to the cell boundary, minus the FP slack that absorbs the
  // few-ulp floor-arithmetic disagreement), or staying within the index
  // margin -- every query within L1 distance margin() of the cell is
  // already in its lists, so a ball of that radius may leave the cell.
  double clearance = 0.0;
  if (cn >= 0) {
    const Rect cr = query_index_.CellRectOf(cn);
    clearance = std::max(
        std::min(std::min(new_pos.x - cr.min_x, cr.max_x - new_pos.x),
                 std::min(new_pos.y - cr.min_y, cr.max_y - new_pos.y)) -
            query_index_.fp_slack(),
        query_index_.margin());
  }
  if (co == cn) {
    // Same cell: queries fully covering it stay members; only partials can
    // flip.
    for (const QueryIndex::PartialEntry& e : query_index_.Partial(co)) {
      ++ws->touched;
      const bool in_old = e.range.Contains(old_pos);
      const bool in_new = e.range.Contains(new_pos);
      if (in_old != in_new) {
        ws->events.push_back(
            MemberEvent{e.id, id, static_cast<uint8_t>(family), in_new});
      }
      clearance = std::min(clearance, FlipDistance(e.range, new_pos, in_new));
    }
    return std::max(clearance, 0.0);
  }
  const auto& partial_old = co >= 0 ? query_index_.Partial(co) : kNoPartial;
  const auto& full_old = co >= 0 ? query_index_.Full(co) : kNoFull;
  const auto& partial_new = cn >= 0 ? query_index_.Partial(cn) : kNoPartial;
  const auto& full_new = cn >= 0 ? query_index_.Full(cn) : kNoFull;
  // Four-way sorted merge over the union of candidate ids. A query absent
  // from a cell's lists cannot contain any position assigned to that cell
  // (QueryIndex coverage guarantee), so membership on that side is false.
  size_t ipo = 0;
  size_t ifo = 0;
  size_t ipn = 0;
  size_t ifn = 0;
  while (true) {
    QueryId q = std::numeric_limits<QueryId>::max();
    if (ipo < partial_old.size()) {
      q = std::min(q, partial_old[ipo].id);
    }
    if (ifo < full_old.size()) {
      q = std::min(q, full_old[ifo]);
    }
    if (ipn < partial_new.size()) {
      q = std::min(q, partial_new[ipn].id);
    }
    if (ifn < full_new.size()) {
      q = std::min(q, full_new[ifn]);
    }
    if (q == std::numeric_limits<QueryId>::max()) {
      break;
    }
    const bool covers_old = ifo < full_old.size() && full_old[ifo] == q;
    if (covers_old) {
      ++ifo;
    }
    const Rect* range_old = nullptr;
    if (ipo < partial_old.size() && partial_old[ipo].id == q) {
      range_old = &partial_old[ipo].range;
      ++ipo;
    }
    const bool covers_new = ifn < full_new.size() && full_new[ifn] == q;
    if (covers_new) {
      ++ifn;
    }
    const Rect* range_new = nullptr;
    if (ipn < partial_new.size() && partial_new[ipn].id == q) {
      range_new = &partial_new[ipn].range;
      ++ipn;
    }
    ++ws->touched;
    bool in_partial_new = false;
    if (range_new != nullptr) {
      in_partial_new = range_new->Contains(new_pos);
      // Only the new cell's partial entries bound the clearance: its full
      // entries cannot flip while the node stays in the cell, and the
      // cell-boundary term already guards the cell assignment.
      clearance =
          std::min(clearance, FlipDistance(*range_new, new_pos,
                                           in_partial_new));
    }
    const bool in_old =
        old_present &&
        (covers_old || (range_old != nullptr && range_old->Contains(old_pos)));
    const bool in_new = new_present && (covers_new || in_partial_new);
    if (in_old != in_new) {
      ws->events.push_back(
          MemberEvent{q, id, static_cast<uint8_t>(family), in_new});
    }
  }
  return cn >= 0 ? std::max(clearance, 0.0) : 0.0;
}

void IncrementalEvaluator::ProcessFamily(Family family, NodeId id,
                                         bool new_present, Point new_pos,
                                         WorkerScratch* ws) {
  NodeState& state = state_[id][family];
  const bool old_present = state.present != 0;
  const Point old_pos = state.pos;
  if (!old_present && !new_present) {
    return;
  }
  if (old_present && new_present && state.clearance > 0.0 &&
      L1(new_pos, state.ref) < state.clearance) {
    // Still inside the ball certified by the last walk: same cell, no
    // membership flips possible.
    state.pos = new_pos;
    return;
  }
  state.clearance = WalkCandidates(family, id, old_present, old_pos,
                                   new_present, new_pos, ws);
  state.present = new_present ? 1 : 0;
  state.pos = new_pos;
  state.ref = new_pos;
}

void IncrementalEvaluator::ProcessNode(
    NodeId id, const std::vector<Point>& truth_positions,
    const std::vector<Point>& believed_positions,
    const std::vector<char>& believed_known, WorkerScratch* ws) {
  const Point new_truth = world_.Clamp(truth_positions[id]);
  const bool known = believed_known[id] != 0;
  Point new_believed{};
  if (known) {
    new_believed = world_.Clamp(believed_positions[id]);
    // Same expression, argument order, and clamping as CompareQuery's
    // Distance(believed.PositionOf(id), truth.PositionOf(id)).
    node_distance_[id] = Distance(new_believed, new_truth);
  }
  ProcessFamily(kTruth, id, /*new_present=*/true, new_truth, ws);
  ProcessFamily(kBelieved, id, known, new_believed, ws);
}

void IncrementalEvaluator::ApplyEvents(
    const std::vector<WorkerScratch>& scratch) {
  size_t total = 0;
  for (const WorkerScratch& ws : scratch) {
    total += ws.events.size();
    queries_touched_ += ws.touched;
  }
  deltas_applied_ += static_cast<int64_t>(total);
  if (total == 0) {
    return;
  }
  // Group events by (query, family) with a stable counting sort, then apply
  // each bucket in one go: both member vectors of a query are loaded into
  // cache exactly once instead of once per event. Any fixed application
  // order yields the same final state -- member sets are sorted id sets, and
  // the sym_diff update below maintains its invariant exactly at every step
  // -- so regrouping preserves bitwise output; the sort must merely be
  // deterministic, which counting sort over deterministic inputs is.
  const size_t num_keys = queries_.size() * 2;
  event_starts_.assign(num_keys + 1, 0);
  for (const WorkerScratch& ws : scratch) {
    for (const MemberEvent& ev : ws.events) {
      ++event_starts_[static_cast<size_t>(ev.query) * 2 + ev.family + 1];
    }
  }
  for (size_t k = 0; k < num_keys; ++k) {
    event_starts_[k + 1] += event_starts_[k];
  }
  sorted_events_.resize(total);
  // Scattering with event_starts_[key]++ leaves event_starts_[key] holding
  // the END of bucket `key` (the classic in-place counting-sort shift).
  for (const WorkerScratch& ws : scratch) {
    for (const MemberEvent& ev : ws.events) {
      const size_t key = static_cast<size_t>(ev.query) * 2 + ev.family;
      sorted_events_[event_starts_[key]++] = ev;
    }
  }
  for (size_t key = 0; key < num_keys; ++key) {
    const uint32_t begin = key == 0 ? 0 : event_starts_[key - 1];
    const uint32_t end = event_starts_[key];
    if (begin == end) {
      continue;
    }
    const auto query = static_cast<QueryId>(key / 2);
    const auto family = static_cast<int>(key % 2);
    std::vector<NodeId>& mine = members_[family][query];
    const std::vector<NodeId>& other = members_[1 - family][query];
    for (uint32_t i = begin; i < end; ++i) {
      const MemberEvent& ev = sorted_events_[i];
      const bool in_other =
          std::binary_search(other.begin(), other.end(), ev.node);
      const auto it = std::lower_bound(mine.begin(), mine.end(), ev.node);
      if (ev.add) {
        LIRA_DCHECK(it == mine.end() || *it != ev.node);
        mine.insert(it, ev.node);
        sym_diff_[query] += in_other ? -1 : 1;
      } else {
        LIRA_DCHECK(it != mine.end() && *it == ev.node);
        mine.erase(it);
        sym_diff_[query] += in_other ? 1 : -1;
      }
      LIRA_DCHECK(sym_diff_[query] >= 0);
    }
  }
}

void IncrementalEvaluator::ApplySample(
    const std::vector<Point>& truth_positions,
    const std::vector<Point>& believed_positions,
    const std::vector<char>& believed_known, ThreadPool* pool) {
  LIRA_CHECK(static_cast<int32_t>(truth_positions.size()) == num_nodes_);
  LIRA_CHECK(static_cast<int32_t>(believed_positions.size()) == num_nodes_);
  LIRA_CHECK(static_cast<int32_t>(believed_known.size()) == num_nodes_);
  if (mode_ == EvalMode::kFullRescan) {
    // The original serial snapshot maintenance, verbatim.
    for (NodeId id = 0; id < num_nodes_; ++id) {
      truth_index_->Update(id, truth_positions[id]);
      if (believed_known[id] != 0) {
        believed_index_->Update(id, believed_positions[id]);
      } else {
        believed_index_->Remove(id);
      }
    }
    return;
  }
  if (pool == nullptr || pool->num_threads() <= 1) {
    std::vector<WorkerScratch> scratch(1);
    for (NodeId id = 0; id < num_nodes_; ++id) {
      ProcessNode(id, truth_positions, believed_positions, believed_known,
                  &scratch[0]);
    }
    ApplyEvents(scratch);
    return;
  }
  // Parallel phase: per-node slots and per-worker buffers only. Chunks are
  // contiguous ascending, so applying buffers in chunk order afterwards
  // replays the events in ascending node order for any thread count.
  std::vector<WorkerScratch> scratch(pool->num_threads());
  pool->ParallelFor(0, num_nodes_, kNodeGrain,
                    [&](int32_t chunk, int64_t begin, int64_t end) {
                      for (int64_t id = begin; id < end; ++id) {
                        ProcessNode(static_cast<NodeId>(id), truth_positions,
                                    believed_positions, believed_known,
                                    &scratch[chunk]);
                      }
                    });
  ApplyEvents(scratch);
}

std::vector<QueryAccuracy> IncrementalEvaluator::Evaluate(ThreadPool* pool) {
  std::vector<QueryAccuracy> out(queries_.size());
  if (mode_ == EvalMode::kFullRescan) {
    const auto eval_one = [&](QueryId q, QueryEvalScratch* scratch) {
      if (active_[q] != 0) {
        out[q] = CompareQuery(*truth_index_, *believed_index_, queries_[q],
                              scratch);
      }
    };
    if (pool == nullptr || pool->num_threads() <= 1) {
      QueryEvalScratch scratch;
      for (QueryId q = 0; q < num_queries(); ++q) {
        eval_one(q, &scratch);
      }
      return out;
    }
    std::vector<QueryEvalScratch> scratch(pool->num_threads());
    pool->ParallelFor(0, num_queries(), /*grain=*/1,
                      [&](int32_t chunk, int64_t begin, int64_t end) {
                        for (int64_t q = begin; q < end; ++q) {
                          eval_one(static_cast<QueryId>(q), &scratch[chunk]);
                        }
                      });
    return out;
  }
  const auto eval_one = [&](QueryId q) {
    if (active_[q] == 0) {
      return;
    }
    const std::vector<NodeId>& truth = members_[kTruth][q];
    const std::vector<NodeId>& believed = members_[kBelieved][q];
    QueryAccuracy acc;
    acc.truth_size = static_cast<int32_t>(truth.size());
    acc.believed_size = static_cast<int32_t>(believed.size());
    acc.containment_error =
        static_cast<double>(sym_diff_[q]) /
        static_cast<double>(std::max<int32_t>(1, acc.truth_size));
    if (!believed.empty()) {
      // Ascending-id summation of the identical per-node distance terms
      // reproduces CompareQuery's partial sums exactly.
      double total = 0.0;
      for (NodeId id : believed) {
        total += node_distance_[id];
      }
      acc.position_error = total / static_cast<double>(believed.size());
    }
    out[q] = acc;
  };
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (QueryId q = 0; q < num_queries(); ++q) {
      eval_one(q);
    }
    return out;
  }
  pool->ParallelFor(0, num_queries(), /*grain=*/1,
                    [&](int32_t /*chunk*/, int64_t begin, int64_t end) {
                      for (int64_t q = begin; q < end; ++q) {
                        eval_one(static_cast<QueryId>(q));
                      }
                    });
  return out;
}

}  // namespace lira
