// Cells -> queries inverted index for incremental continual-query
// evaluation.
//
// The grid index maps cells to the nodes inside them; this is the dual
// structure: a uniform grid over the world where each cell lists the queries
// whose (slack-expanded) ranges overlap it. A node position update then only
// needs to consult the query lists of its old and new cells instead of
// re-executing every registered query -- the standard CQ-system optimization
// (ISSUE 3; cf. distributed continuous range query processing, PAPERS.md).
//
// Each cell keeps two lists, both sorted by query id:
//   - `full`: queries whose range covers the whole cell with slack to spare.
//     Every position inside the cell is a member, so a node moving within one
//     such cell can skip these queries entirely.
//   - `partial`: queries overlapping but not fully covering the cell. The
//     query rectangles are stored inline as structure-of-arrays columns
//     (CellPartials) so the membership test during a delta walk neither
//     chases a pointer into the registry nor strides over interleaved
//     fields -- the same-cell walk hands the four edge columns straight to
//     the RectWalkDistances kernel (common/kernels.h).
//
// Correctness depends on a coverage guarantee: for any in-world position p
// assigned to cell c by CellIndexOf's floor arithmetic, every query
// containing p appears in c's lists. Floor arithmetic can disagree with the
// geometric cell rectangle by a few ulps at cell boundaries, so ranges are
// expanded by a slack much larger than an ulp (and full coverage is shrunk
// by the same slack) before classifying -- conservative in both directions.

#ifndef LIRA_CQ_QUERY_INDEX_H_
#define LIRA_CQ_QUERY_INDEX_H_

#include <cstdint>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"
#include "lira/cq/query.h"

namespace lira {

/// Maps grid cells to the queries overlapping them. Insert/Erase are
/// symmetric: Erase must be called with the same rectangle the query was
/// inserted with.
class QueryIndex {
 public:
  /// The queries partially overlapping one cell, as parallel columns sorted
  /// ascending by id: `id[i]` has range `{min_x[i], min_y[i], max_x[i],
  /// max_y[i]}`. The edge columns are contiguous doubles, ready for the
  /// vectorized rect kernels.
  struct CellPartials {
    std::vector<QueryId> id;
    std::vector<double> min_x;
    std::vector<double> min_y;
    std::vector<double> max_x;
    std::vector<double> max_y;

    size_t size() const { return id.size(); }
    bool empty() const { return id.empty(); }
    Rect RectAt(size_t i) const {
      return Rect{min_x[i], min_y[i], max_x[i], max_y[i]};
    }
  };

  /// `world` must be non-degenerate; `cells_per_side` >= 1. `margin`
  /// (meters, >= 0) additionally expands every range on all sides when
  /// choosing which cells list it, on top of the internal FP slack.
  static StatusOr<QueryIndex> Create(const Rect& world, int32_t cells_per_side,
                                     double margin = 0.0);

  /// Adds `id` with rectangle `range` to the lists of every overlapped cell.
  void Insert(QueryId id, const Rect& range);

  /// Removes `id` from every cell `Insert(id, range)` added it to.
  void Erase(QueryId id, const Rect& range);

  /// Flat index of the cell owning the (clamped) point. Identical floor
  /// arithmetic to GridIndex/StatisticsGrid.
  int32_t CellIndexOf(Point p) const;

  /// Geographic rectangle of a flat cell index.
  Rect CellRectOf(int32_t cell) const;

  /// Queries partially overlapping the cell, ascending by id.
  const CellPartials& Partial(int32_t cell) const { return partial_[cell]; }

  /// Queries fully covering the cell (with slack), ascending by id.
  const std::vector<QueryId>& Full(int32_t cell) const { return full_[cell]; }

  int32_t cells_per_side() const { return cells_per_side_; }
  const Rect& world() const { return world_; }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }
  /// The coverage slack (meters): total expansion applied on each side of a
  /// range when enumerating cells (margin + FP slack).
  double slack() const { return slack_; }
  /// The caller-chosen margin component of the slack. Any point within L1
  /// distance `margin()` of a cell is covered by that cell's lists, so a
  /// clearance ball of radius <= margin() never needs the cell-boundary
  /// term (see IncrementalEvaluator::WalkCandidates).
  double margin() const { return margin_; }
  /// The FP component of the slack (slack() - margin()): the part that only
  /// absorbs floor-arithmetic ulp disagreement.
  double fp_slack() const { return slack_ - margin_; }
  /// Upper bound on the length of any cell's partial list (high watermark:
  /// Erase never lowers it). Lets walk scratch be sized once per chunk
  /// instead of once per candidate walk.
  size_t max_partial_size() const { return max_partial_; }

 private:
  QueryIndex(const Rect& world, int32_t cells_per_side, double margin);

  /// Covered cell span [cx0, cx1] x [cy0, cy1] of a slack-expanded range;
  /// false when the expanded range misses the world entirely.
  bool CellSpan(const Rect& range, int32_t* cx0, int32_t* cy0, int32_t* cx1,
                int32_t* cy1) const;

  Rect world_;
  int32_t cells_per_side_;
  double cell_w_;
  double cell_h_;
  double margin_;
  double slack_;
  std::vector<CellPartials> partial_;
  std::vector<std::vector<QueryId>> full_;
  size_t max_partial_ = 0;
};

}  // namespace lira

#endif  // LIRA_CQ_QUERY_INDEX_H_
