// Continual range queries.

#ifndef LIRA_CQ_QUERY_H_
#define LIRA_CQ_QUERY_H_

#include <cstdint>

#include "lira/common/geometry.h"

namespace lira {

/// Identifies a continual query.
using QueryId = int32_t;

/// A continual range query: report the set of mobile nodes inside `range`.
/// The experiments use static ranges (the paper's range CQs); nothing in the
/// load shedder depends on ranges being static.
struct RangeQuery {
  QueryId id = -1;
  Rect range;
};

}  // namespace lira

#endif  // LIRA_CQ_QUERY_H_
