#include "lira/cq/workload.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "lira/common/rng.h"

namespace lira {

std::string_view QueryDistributionName(QueryDistribution d) {
  switch (d) {
    case QueryDistribution::kProportional:
      return "Proportional";
    case QueryDistribution::kInverse:
      return "Inverse";
    case QueryDistribution::kRandom:
      return "Random";
  }
  return "Unknown";
}

StatusOr<QueryRegistry> GenerateQueries(
    const QueryWorkloadConfig& config, const Rect& world,
    const std::vector<Point>& node_positions) {
  if (config.num_queries < 0) {
    return InvalidArgumentError("num_queries must be non-negative");
  }
  if (config.side_length <= 0.0) {
    return InvalidArgumentError("side_length must be positive");
  }
  if (config.density_cells < 1) {
    return InvalidArgumentError("density_cells must be >= 1");
  }
  if (world.width() <= 0.0 || world.height() <= 0.0) {
    return InvalidArgumentError("world must be non-degenerate");
  }
  if (config.side_length > std::min(world.width(), world.height())) {
    return InvalidArgumentError("side_length exceeds the world size");
  }

  const int32_t g = config.density_cells;
  const double cell_w = world.width() / g;
  const double cell_h = world.height() / g;
  std::vector<double> counts(static_cast<size_t>(g) * g, 0.0);
  for (Point p : node_positions) {
    p = world.Clamp(p);
    const auto cx = std::clamp(
        static_cast<int32_t>((p.x - world.min_x) / cell_w), 0, g - 1);
    const auto cy = std::clamp(
        static_cast<int32_t>((p.y - world.min_y) / cell_h), 0, g - 1);
    counts[static_cast<size_t>(cy) * g + cx] += 1.0;
  }

  std::vector<double> weights(counts.size(), 1.0);
  switch (config.distribution) {
    case QueryDistribution::kProportional:
      // Dense cells attract queries; empty cells keep a tiny weight so the
      // sampler never degenerates.
      for (size_t i = 0; i < counts.size(); ++i) {
        weights[i] = counts[i] + 0.05;
      }
      break;
    case QueryDistribution::kInverse:
      for (size_t i = 0; i < counts.size(); ++i) {
        weights[i] = 1.0 / (counts[i] + 1.0);
      }
      break;
    case QueryDistribution::kRandom:
      break;  // uniform
  }

  Rng rng(config.seed);
  QueryRegistry registry;
  for (int32_t q = 0; q < config.num_queries; ++q) {
    const size_t cell = rng.WeightedIndex(weights);
    const auto cy = static_cast<int32_t>(cell) / g;
    const auto cx = static_cast<int32_t>(cell) % g;
    Point center{world.min_x + (cx + rng.Uniform01()) * cell_w,
                 world.min_y + (cy + rng.Uniform01()) * cell_h};
    const double side =
        rng.Uniform(config.side_length / 2.0, config.side_length);
    // Keep the query fully inside the world by clamping its center.
    center.x = std::clamp(center.x, world.min_x + side / 2,
                          world.max_x - side / 2);
    center.y = std::clamp(center.y, world.min_y + side / 2,
                          world.max_y - side / 2);
    registry.Add(Rect::CenteredAt(center, side));
  }
  return registry;
}

}  // namespace lira
