#include "lira/cq/query_index.h"

#include <algorithm>
#include <cmath>

#include "lira/common/check.h"

namespace lira {
namespace {

/// FP slack relative to the world diagonal scale: vastly larger than the
/// few-ulp disagreement between floor cell assignment and cell geometry,
/// vastly smaller than any meaningful query geometry.
constexpr double kRelativeSlack = 1e-9;

}  // namespace

QueryIndex::QueryIndex(const Rect& world, int32_t cells_per_side,
                       double margin)
    : world_(world),
      cells_per_side_(cells_per_side),
      cell_w_(world.width() / cells_per_side),
      cell_h_(world.height() / cells_per_side),
      margin_(margin),
      slack_(margin +
             kRelativeSlack * std::max(world.width(), world.height())),
      partial_(static_cast<size_t>(cells_per_side) * cells_per_side),
      full_(static_cast<size_t>(cells_per_side) * cells_per_side) {}

StatusOr<QueryIndex> QueryIndex::Create(const Rect& world,
                                        int32_t cells_per_side,
                                        double margin) {
  if (world.width() <= 0.0 || world.height() <= 0.0) {
    return InvalidArgumentError("world rectangle must be non-degenerate");
  }
  if (cells_per_side < 1) {
    return InvalidArgumentError("cells_per_side must be >= 1");
  }
  if (margin < 0.0) {
    return InvalidArgumentError("margin must be non-negative");
  }
  return QueryIndex(world, cells_per_side, margin);
}

int32_t QueryIndex::CellIndexOf(Point p) const {
  p = world_.Clamp(p);
  auto cx = static_cast<int32_t>((p.x - world_.min_x) / cell_w_);
  auto cy = static_cast<int32_t>((p.y - world_.min_y) / cell_h_);
  cx = std::clamp(cx, 0, cells_per_side_ - 1);
  cy = std::clamp(cy, 0, cells_per_side_ - 1);
  return cy * cells_per_side_ + cx;
}

Rect QueryIndex::CellRectOf(int32_t cell) const {
  LIRA_DCHECK(cell >= 0 &&
              cell < static_cast<int32_t>(partial_.size()));
  const int32_t ix = cell % cells_per_side_;
  const int32_t iy = cell / cells_per_side_;
  return Rect{world_.min_x + ix * cell_w_, world_.min_y + iy * cell_h_,
              world_.min_x + (ix + 1) * cell_w_,
              world_.min_y + (iy + 1) * cell_h_};
}

bool QueryIndex::CellSpan(const Rect& range, int32_t* cx0, int32_t* cy0,
                          int32_t* cx1, int32_t* cy1) const {
  const Rect expanded{range.min_x - slack_, range.min_y - slack_,
                      range.max_x + slack_, range.max_y + slack_};
  if (!expanded.IntersectsClosed(world_)) {
    return false;
  }
  *cx0 = std::clamp(
      static_cast<int32_t>((expanded.min_x - world_.min_x) / cell_w_), 0,
      cells_per_side_ - 1);
  *cy0 = std::clamp(
      static_cast<int32_t>((expanded.min_y - world_.min_y) / cell_h_), 0,
      cells_per_side_ - 1);
  *cx1 = std::clamp(
      static_cast<int32_t>((expanded.max_x - world_.min_x) / cell_w_), 0,
      cells_per_side_ - 1);
  *cy1 = std::clamp(
      static_cast<int32_t>((expanded.max_y - world_.min_y) / cell_h_), 0,
      cells_per_side_ - 1);
  return true;
}

void QueryIndex::Insert(QueryId id, const Rect& range) {
  int32_t cx0;
  int32_t cy0;
  int32_t cx1;
  int32_t cy1;
  if (!CellSpan(range, &cx0, &cy0, &cx1, &cy1)) {
    return;
  }
  for (int32_t cy = cy0; cy <= cy1; ++cy) {
    for (int32_t cx = cx0; cx <= cx1; ++cx) {
      const int32_t cell = cy * cells_per_side_ + cx;
      const Rect cell_rect = CellRectOf(cell);
      // Full coverage shrinks by the slack so that floor-arithmetic cell
      // assignment can never place a non-member in a "full" cell.
      const bool covers = range.min_x <= cell_rect.min_x - slack_ &&
                          range.min_y <= cell_rect.min_y - slack_ &&
                          range.max_x >= cell_rect.max_x + slack_ &&
                          range.max_y >= cell_rect.max_y + slack_;
      if (covers) {
        auto& list = full_[cell];
        list.insert(std::lower_bound(list.begin(), list.end(), id), id);
      } else {
        CellPartials& list = partial_[cell];
        const auto pos =
            std::lower_bound(list.id.begin(), list.id.end(), id) -
            list.id.begin();
        list.id.insert(list.id.begin() + pos, id);
        list.min_x.insert(list.min_x.begin() + pos, range.min_x);
        list.min_y.insert(list.min_y.begin() + pos, range.min_y);
        list.max_x.insert(list.max_x.begin() + pos, range.max_x);
        list.max_y.insert(list.max_y.begin() + pos, range.max_y);
        max_partial_ = std::max(max_partial_, list.id.size());
      }
    }
  }
}

void QueryIndex::Erase(QueryId id, const Rect& range) {
  int32_t cx0;
  int32_t cy0;
  int32_t cx1;
  int32_t cy1;
  if (!CellSpan(range, &cx0, &cy0, &cx1, &cy1)) {
    return;
  }
  for (int32_t cy = cy0; cy <= cy1; ++cy) {
    for (int32_t cx = cx0; cx <= cx1; ++cx) {
      const int32_t cell = cy * cells_per_side_ + cx;
      auto& full = full_[cell];
      const auto fit = std::lower_bound(full.begin(), full.end(), id);
      if (fit != full.end() && *fit == id) {
        full.erase(fit);
        continue;
      }
      CellPartials& partial = partial_[cell];
      const auto pit =
          std::lower_bound(partial.id.begin(), partial.id.end(), id);
      if (pit != partial.id.end() && *pit == id) {
        const auto pos = pit - partial.id.begin();
        partial.id.erase(pit);
        partial.min_x.erase(partial.min_x.begin() + pos);
        partial.min_y.erase(partial.min_y.begin() + pos);
        partial.max_x.erase(partial.max_x.begin() + pos);
        partial.max_y.erase(partial.max_y.begin() + pos);
      }
    }
  }
}

}  // namespace lira
