// Query workload generation (paper Section 4.2).
//
// Range-CQ side lengths are drawn uniformly from [w/2, w] where w is the
// side-length parameter. Query *locations* follow one of three distributions
// relative to the mobile-node distribution: Proportional, Inverse, Random.

#ifndef LIRA_CQ_WORKLOAD_H_
#define LIRA_CQ_WORKLOAD_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/common/status.h"
#include "lira/cq/query_registry.h"

namespace lira {

enum class QueryDistribution {
  kProportional = 0,  ///< query density follows node density
  kInverse = 1,       ///< query density follows the inverse of node density
  kRandom = 2,        ///< uniform over the world
};

std::string_view QueryDistributionName(QueryDistribution d);

struct QueryWorkloadConfig {
  int32_t num_queries = 40;
  /// Side-length parameter w; sides are ~ U[w/2, w] (meters).
  double side_length = 1000.0;
  QueryDistribution distribution = QueryDistribution::kProportional;
  /// Resolution of the density grid used to bias query placement.
  int32_t density_cells = 32;
  uint64_t seed = 23;
};

/// Generates `config.num_queries` range queries inside `world`, biased by
/// the node density estimated from `node_positions`. Query rectangles are
/// always fully inside the world.
StatusOr<QueryRegistry> GenerateQueries(
    const QueryWorkloadConfig& config, const Rect& world,
    const std::vector<Point>& node_positions);

}  // namespace lira

#endif  // LIRA_CQ_WORKLOAD_H_
