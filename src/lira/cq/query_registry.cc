#include "lira/cq/query_registry.h"

#include "lira/common/check.h"

namespace lira {

QueryId QueryRegistry::Add(const Rect& range) {
  RangeQuery query;
  query.id = static_cast<QueryId>(queries_.size());
  query.range = range;
  queries_.push_back(query);
  return query.id;
}

const RangeQuery& QueryRegistry::Get(QueryId id) const {
  LIRA_DCHECK(id >= 0 && id < size());
  return queries_[id];
}

double QueryRegistry::FractionalCount(const Rect& rect) const {
  double total = 0.0;
  for (const RangeQuery& q : queries_) {
    total += OverlapFraction(q.range, rect);
  }
  return total;
}

}  // namespace lira
