// Shard-local clipped sub-queries for a strip-partitioned cluster.
//
// A range query overlapping K shard strips is installed as K shard-local
// sub-queries, each carrying the query range clipped to its strip expanded
// by the attainable-inaccuracy margin. Each shard evaluates only its own
// sub-queries against only the nodes it owns, and the coordinator unions
// the per-shard membership lists with a sorted merge -- no per-query
// coordinator round-trip, and no cross-shard candidate traffic.
//
// This layer is pure cq-side bookkeeping: it takes the shard strips as
// plain rectangles (it does not know about ShardMap or epochs). The owner
// rebuilds the table whenever the query set or the strip boundaries change,
// which keeps the installed sub-queries aligned with the current ownership
// epoch (DESIGN.md §12).

#ifndef LIRA_CQ_SHARDED_QUERIES_H_
#define LIRA_CQ_SHARDED_QUERIES_H_

#include <cstdint>
#include <vector>

#include "lira/common/geometry.h"
#include "lira/cq/query.h"
#include "lira/cq/query_registry.h"
#include "lira/mobility/position.h"

namespace lira {

/// One query's clipped installation at one shard.
struct ShardSubQuery {
  QueryId id = -1;
  /// range(query) ∩ strip(shard) -- never empty under closed intersection,
  /// but possibly zero-area (a query edge flush against a strip border).
  Rect clipped;
};

/// Per-shard lists of clipped sub-queries, id-sorted within each shard.
class ShardedQueryTable {
 public:
  ShardedQueryTable() = default;

  /// Rebuilds the table: query q is installed at shard k iff q.range
  /// closed-intersects strip k expanded by `margin` on every side. The
  /// margin covers believed positions that drift up to the attainable
  /// inaccuracy outside the owning strip; the clipped rect is the
  /// intersection with the *expanded* strip. Registration order (and so
  /// each shard's list order) follows ascending query id.
  void Build(const QueryRegistry& registry,
             const std::vector<Rect>& shard_strips, double margin);

  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }

  /// Sub-queries installed at `shard`, ascending by query id.
  const std::vector<ShardSubQuery>& AtShard(int32_t shard) const {
    return shards_[shard];
  }

  /// The clipped rect of query `id` at `shard`, or nullptr when the query
  /// is not installed there. Binary search over the id-sorted list.
  const ShardSubQuery* Find(int32_t shard, QueryId id) const;

  /// Total installed sub-queries across shards (>= registry size; each
  /// boundary-straddling query counts once per overlapped shard).
  int64_t TotalInstalled() const;

 private:
  std::vector<std::vector<ShardSubQuery>> shards_;
};

/// Sorted-set union of per-shard membership lists: each input must be
/// ascending and duplicate-free; inputs may share ids only when shards
/// disagree about ownership transiently (the merge deduplicates). K-way
/// merge by repeated two-way passes -- K is the shard count, tiny.
std::vector<NodeId> MergeSortedUnion(
    const std::vector<std::vector<NodeId>>& lists);

}  // namespace lira

#endif  // LIRA_CQ_SHARDED_QUERIES_H_
