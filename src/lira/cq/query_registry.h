// The set of continual queries installed at the server.

#ifndef LIRA_CQ_QUERY_REGISTRY_H_
#define LIRA_CQ_QUERY_REGISTRY_H_

#include <vector>

#include "lira/common/geometry.h"
#include "lira/cq/query.h"

namespace lira {

/// Holds the installed continual queries. Query ids are dense indices into
/// the registration order.
class QueryRegistry {
 public:
  QueryRegistry() = default;

  /// Registers a query with the given range; returns its id.
  QueryId Add(const Rect& range);

  int32_t size() const { return static_cast<int32_t>(queries_.size()); }
  const RangeQuery& Get(QueryId id) const;
  const std::vector<RangeQuery>& queries() const { return queries_; }

  /// Fractional number of queries overlapping `rect`: each query counts by
  /// the fraction of its own area inside `rect` (paper Section 3.1: "queries
  /// partially intersecting the shedding region are fractionally counted").
  double FractionalCount(const Rect& rect) const;

 private:
  std::vector<RangeQuery> queries_;
};

}  // namespace lira

#endif  // LIRA_CQ_QUERY_REGISTRY_H_
