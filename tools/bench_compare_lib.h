// Core logic of the bench-regression gate (tools/bench_compare): a minimal
// JSON reader that flattens any BENCH_*.json into dotted numeric keys, plus
// the per-metric comparison that decides regression/improvement/stable.
// Header-only so tools/bench_compare_test links the exact shipped logic.
//
// The gate compares a freshly produced bench export against a committed
// baseline (bench/baselines/): for every numeric key present in both files
// it computes current/baseline and flags a regression when the ratio moves
// beyond the tolerance in the metric's bad direction. Direction is inferred
// from the key: throughput-style names (containing "per_second", "rate",
// "speedup", "throughput", "ops") are higher-better, everything else
// (latencies in ns/seconds, error metrics, byte counts) is lower-better.
// Deterministic count metrics compare equal and never trip the gate.

#ifndef LIRA_TOOLS_BENCH_COMPARE_LIB_H_
#define LIRA_TOOLS_BENCH_COMPARE_LIB_H_

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace lira::benchgate {

/// Flat view of one bench JSON: dotted-path -> numeric value ("rows.0.
/// ingest_seconds", "metrics.BM_PlanDeltaAt"). Non-numeric leaves (name,
/// git describe) land in `strings`.
struct FlatBench {
  std::map<std::string, double> numbers;
  std::map<std::string, std::string> strings;
  bool ok = false;
  std::string error;
};

namespace internal {

struct Parser {
  const char* p;
  const char* end;
  FlatBench* out;

  bool Fail(const std::string& message) {
    if (out->error.empty()) {
      out->error = message;
    }
    return false;
  }

  void SkipSpace() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) {
      ++p;
    }
  }

  bool ParseString(std::string* value) {
    if (p >= end || *p != '"') {
      return Fail("expected string");
    }
    ++p;
    value->clear();
    while (p < end && *p != '"') {
      if (*p == '\\' && p + 1 < end) {
        ++p;
        switch (*p) {
          case 'n':
            value->push_back('\n');
            break;
          case 't':
            value->push_back('\t');
            break;
          default:
            value->push_back(*p);
        }
      } else {
        value->push_back(*p);
      }
      ++p;
    }
    if (p >= end) {
      return Fail("unterminated string");
    }
    ++p;  // closing quote
    return true;
  }

  bool ParseValue(const std::string& path) {
    SkipSpace();
    if (p >= end) {
      return Fail("unexpected end of input");
    }
    if (*p == '{') {
      return ParseObject(path);
    }
    if (*p == '[') {
      return ParseArray(path);
    }
    if (*p == '"') {
      std::string value;
      if (!ParseString(&value)) {
        return false;
      }
      out->strings[path] = value;
      return true;
    }
    if (!std::strncmp(p, "true", 4) && p + 4 <= end) {
      out->numbers[path] = 1.0;
      p += 4;
      return true;
    }
    if (!std::strncmp(p, "false", 5) && p + 5 <= end) {
      out->numbers[path] = 0.0;
      p += 5;
      return true;
    }
    if (!std::strncmp(p, "null", 4) && p + 4 <= end) {
      p += 4;
      return true;
    }
    char* num_end = nullptr;
    const double value = std::strtod(p, &num_end);
    if (num_end == p) {
      return Fail("expected a JSON value at '" +
                  std::string(p, std::min<size_t>(16, end - p)) + "'");
    }
    out->numbers[path] = value;
    p = num_end;
    return true;
  }

  bool ParseObject(const std::string& path) {
    ++p;  // '{'
    SkipSpace();
    if (p < end && *p == '}') {
      ++p;
      return true;
    }
    while (true) {
      SkipSpace();
      std::string key;
      if (!ParseString(&key)) {
        return false;
      }
      SkipSpace();
      if (p >= end || *p != ':') {
        return Fail("expected ':' after key '" + key + "'");
      }
      ++p;
      if (!ParseValue(path.empty() ? key : path + "." + key)) {
        return false;
      }
      SkipSpace();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == '}') {
        ++p;
        return true;
      }
      return Fail("expected ',' or '}' in object");
    }
  }

  bool ParseArray(const std::string& path) {
    ++p;  // '['
    SkipSpace();
    if (p < end && *p == ']') {
      ++p;
      return true;
    }
    int64_t index = 0;
    while (true) {
      if (!ParseValue(path + "." + std::to_string(index))) {
        return false;
      }
      ++index;
      SkipSpace();
      if (p < end && *p == ',') {
        ++p;
        continue;
      }
      if (p < end && *p == ']') {
        ++p;
        return true;
      }
      return Fail("expected ',' or ']' in array");
    }
  }
};

}  // namespace internal

/// Parses `text` as JSON and flattens it. On malformed input `ok` is false
/// and `error` says where.
inline FlatBench FlattenJson(const std::string& text) {
  FlatBench out;
  internal::Parser parser{text.data(), text.data() + text.size(), &out};
  parser.SkipSpace();
  if (parser.p >= parser.end) {
    out.error = "empty input";
    return out;
  }
  out.ok = parser.ParseValue("");
  if (out.ok) {
    parser.SkipSpace();
    if (parser.p != parser.end) {
      out.ok = false;
      out.error = "trailing characters after JSON value";
    }
  }
  return out;
}

/// True when a larger value of this metric is better (throughput-style
/// names); everything else -- latencies, errors, sizes -- is lower-better.
inline bool HigherIsBetter(const std::string& key) {
  for (const char* pattern :
       {"per_second", "throughput", "speedup", "rate", "_ops"}) {
    if (key.find(pattern) != std::string::npos) {
      return true;
    }
  }
  return false;
}

enum class Verdict { kStable, kImproved, kRegressed, kOnlyInBaseline,
                     kOnlyInCurrent };

struct MetricDiff {
  std::string key;
  double baseline = 0.0;
  double current = 0.0;
  /// current/baseline; 1.0 when the baseline is ~0 and current is too.
  double ratio = 1.0;
  bool higher_is_better = false;
  Verdict verdict = Verdict::kStable;
};

struct CompareOptions {
  /// A metric regresses when it is worse than baseline by more than this
  /// factor (1.10 = 10% worse). CI uses a generous factor to ride out
  /// runner noise; local runs can tighten it.
  double tolerance = 1.10;
  /// Per-metric overrides (exact key match), e.g. {"metrics.BM_X", 2.0}.
  std::map<std::string, double> metric_tolerance;
  /// Values with |baseline| below this are compared absolutely (a 0 -> 1e-9
  /// flip is not a regression).
  double epsilon = 1e-12;
};

struct CompareResult {
  std::vector<MetricDiff> diffs;
  int64_t regressions = 0;
  int64_t improvements = 0;
  int64_t stable = 0;
  /// Keys present in only one file (schema drift -- reported, not fatal).
  int64_t missing = 0;
};

inline CompareResult Compare(const FlatBench& current,
                             const FlatBench& baseline,
                             const CompareOptions& options = {}) {
  CompareResult result;
  for (const auto& [key, base_value] : baseline.numbers) {
    MetricDiff diff;
    diff.key = key;
    diff.baseline = base_value;
    diff.higher_is_better = HigherIsBetter(key);
    const auto it = current.numbers.find(key);
    if (it == current.numbers.end()) {
      diff.verdict = Verdict::kOnlyInBaseline;
      ++result.missing;
      result.diffs.push_back(diff);
      continue;
    }
    diff.current = it->second;
    double tolerance = options.tolerance;
    const auto override_it = options.metric_tolerance.find(key);
    if (override_it != options.metric_tolerance.end()) {
      tolerance = override_it->second;
    }
    if (std::fabs(base_value) < options.epsilon) {
      diff.ratio = std::fabs(diff.current) < options.epsilon ? 1.0 : HUGE_VAL;
      // No meaningful ratio against a ~0 baseline; only flag a lower-better
      // metric that became decidedly nonzero.
      diff.verdict = (!diff.higher_is_better && diff.current > 1.0)
                         ? Verdict::kRegressed
                         : Verdict::kStable;
    } else {
      diff.ratio = diff.current / base_value;
      const double badness =
          diff.higher_is_better ? 1.0 / diff.ratio : diff.ratio;
      if (badness > tolerance) {
        diff.verdict = Verdict::kRegressed;
      } else if (badness < 1.0 / tolerance) {
        diff.verdict = Verdict::kImproved;
      } else {
        diff.verdict = Verdict::kStable;
      }
    }
    switch (diff.verdict) {
      case Verdict::kRegressed:
        ++result.regressions;
        break;
      case Verdict::kImproved:
        ++result.improvements;
        break;
      default:
        ++result.stable;
    }
    result.diffs.push_back(diff);
  }
  for (const auto& [key, value] : current.numbers) {
    if (baseline.numbers.find(key) == baseline.numbers.end()) {
      MetricDiff diff;
      diff.key = key;
      diff.current = value;
      diff.verdict = Verdict::kOnlyInCurrent;
      ++result.missing;
      result.diffs.push_back(diff);
    }
  }
  return result;
}

inline const char* VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kStable:
      return "stable";
    case Verdict::kImproved:
      return "improved";
    case Verdict::kRegressed:
      return "REGRESSED";
    case Verdict::kOnlyInBaseline:
      return "only-in-baseline";
    case Verdict::kOnlyInCurrent:
      return "only-in-current";
  }
  return "?";
}

}  // namespace lira::benchgate

#endif  // LIRA_TOOLS_BENCH_COMPARE_LIB_H_
