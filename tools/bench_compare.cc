// Bench-regression gate: diffs two BENCH_*.json exports and fails (exit 1)
// when any metric is worse than the baseline beyond the tolerance.
//
//   bench_compare CURRENT BASELINE [--tolerance 1.10]
//                 [--metric-tolerance KEY=FACTOR]... [--report PATH]
//
// CURRENT is the freshly produced export, BASELINE the committed reference
// (bench/baselines/). Exit codes: 0 = no regressions, 1 = regression(s),
// 2 = usage/IO error. --report writes the full per-metric diff table
// (markdown) for CI artifacts. Direction inference and the comparison
// rules live in bench_compare_lib.h (unit-tested).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "tools/bench_compare_lib.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) {
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lira::benchgate;
  std::string current_path;
  std::string baseline_path;
  std::string report_path;
  CompareOptions options;
  for (int i = 1; i < argc; ++i) {
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", argv[i]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--tolerance")) {
      options.tolerance = std::atof(next());
      if (options.tolerance < 1.0) {
        std::fprintf(stderr, "--tolerance must be >= 1.0\n");
        return 2;
      }
    } else if (!std::strcmp(argv[i], "--metric-tolerance")) {
      const std::string spec = next();
      const size_t eq = spec.rfind('=');
      if (eq == std::string::npos || eq == 0) {
        std::fprintf(stderr, "--metric-tolerance wants KEY=FACTOR, got %s\n",
                     spec.c_str());
        return 2;
      }
      options.metric_tolerance[spec.substr(0, eq)] =
          std::atof(spec.c_str() + eq + 1);
    } else if (!std::strcmp(argv[i], "--report")) {
      report_path = next();
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "usage: %s CURRENT BASELINE [--tolerance F]"
                   " [--metric-tolerance KEY=F]... [--report PATH]\n",
                   argv[0]);
      return 2;
    } else if (current_path.empty()) {
      current_path = argv[i];
    } else if (baseline_path.empty()) {
      baseline_path = argv[i];
    } else {
      std::fprintf(stderr, "unexpected argument %s\n", argv[i]);
      return 2;
    }
  }
  if (current_path.empty() || baseline_path.empty()) {
    std::fprintf(stderr, "usage: %s CURRENT BASELINE [options]\n", argv[0]);
    return 2;
  }

  std::string current_text;
  std::string baseline_text;
  if (!ReadFile(current_path, &current_text)) {
    std::fprintf(stderr, "cannot read %s\n", current_path.c_str());
    return 2;
  }
  if (!ReadFile(baseline_path, &baseline_text)) {
    std::fprintf(stderr, "cannot read %s\n", baseline_path.c_str());
    return 2;
  }
  const FlatBench current = FlattenJson(current_text);
  if (!current.ok) {
    std::fprintf(stderr, "%s: %s\n", current_path.c_str(),
                 current.error.c_str());
    return 2;
  }
  const FlatBench baseline = FlattenJson(baseline_text);
  if (!baseline.ok) {
    std::fprintf(stderr, "%s: %s\n", baseline_path.c_str(),
                 baseline.error.c_str());
    return 2;
  }

  const CompareResult result = Compare(current, baseline, options);

  std::string report;
  report += "# bench_compare\n\n";
  report += "current:  " + current_path + "\n";
  report += "baseline: " + baseline_path + "\n";
  {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "tolerance: %.3fx | regressed %lld, improved %lld, "
                  "stable %lld, schema-drift %lld\n\n",
                  options.tolerance,
                  static_cast<long long>(result.regressions),
                  static_cast<long long>(result.improvements),
                  static_cast<long long>(result.stable),
                  static_cast<long long>(result.missing));
    report += line;
  }
  report += "| metric | baseline | current | ratio | verdict |\n";
  report += "|---|---|---|---|---|\n";
  for (const MetricDiff& diff : result.diffs) {
    char line[512];
    std::snprintf(line, sizeof(line), "| %s | %.6g | %.6g | %.3f%s | %s |\n",
                  diff.key.c_str(), diff.baseline, diff.current, diff.ratio,
                  diff.higher_is_better ? " (higher=better)" : "",
                  VerdictName(diff.verdict));
    report += line;
  }

  // Console: the summary line plus any non-stable rows.
  std::printf("bench_compare: %s vs %s (tolerance %.3fx)\n",
              current_path.c_str(), baseline_path.c_str(), options.tolerance);
  for (const MetricDiff& diff : result.diffs) {
    if (diff.verdict == Verdict::kStable) {
      continue;
    }
    std::printf("  [%s] %s: %.6g -> %.6g (x%.3f)\n",
                VerdictName(diff.verdict), diff.key.c_str(), diff.baseline,
                diff.current, diff.ratio);
  }
  std::printf("regressed %lld, improved %lld, stable %lld, schema-drift "
              "%lld\n",
              static_cast<long long>(result.regressions),
              static_cast<long long>(result.improvements),
              static_cast<long long>(result.stable),
              static_cast<long long>(result.missing));

  if (!report_path.empty()) {
    std::ofstream out(report_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", report_path.c_str());
      return 2;
    }
    out << report;
  }
  return result.regressions > 0 ? 1 : 0;
}
