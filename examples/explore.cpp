// Interactive parameter explorer: run any policy at any operating point
// from the command line and print the full result record.
//
//   explore [--policy Lira|Lira-Grid|UniformDelta|RandomDrop]
//           [--z 0.5] [--l 250] [--fairness 50] [--nodes 3000]
//           [--distribution Proportional|Inverse|Random]
//           [--mobility walk|trips] [--auto-throttle]
//           [--capacity-fraction 0.5] [--history] [--seed 42]
//           [--telemetry out.jsonl] [--telemetry-stride 10]
//           [--trace out.json] [--flight out.json]
//           [--health out.jsonl] [--health-stride 60]
//           [--threads N] [--shards S] [--rebalance R]
//           [--incremental | --no-incremental]
//
// --threads sets the simulation engine's worker count (0 = hardware
// concurrency, 1 = fully serial); results are identical for any value.
// --shards S >= 1 runs the region-sharded ServerCluster instead of the
// monolithic server (0, the default); S = 1 is bitwise identical to 0.
// --rebalance R re-splits the cluster's shard strips from observed load
// every R adaptation windows (requires --shards >= 1; 0 = static map).
// --no-incremental forces the original recompute-everything accuracy and
// statistics paths (incremental is the default); results are bitwise
// identical either way, only wall-clock time changes.
//
// Example: explore --policy Lira --z 0.4 --l 100 --fairness 25 --history
//
// --telemetry streams the run's timeline (z trajectory, queue depth/drops,
// per-stage plan-build spans, adaptation events) to the given file as JSONL
// (or CSV when the path ends in .csv) and prints a metrics digest.
//
// --trace records per-stage spans (ingest/tracker/stats/optimizer) and
// writes the Chrome trace_event format -- load the file in chrome://tracing
// or https://ui.perfetto.dev; a path ending in .jsonl writes one span per
// line instead. --flight keeps a 256-tick flight-recorder ring and dumps it
// as JSON at the end of the run (and on any LIRA_CHECK failure). --health
// (sharded runs only) appends a cluster health snapshot every
// --health-stride frames as JSONL, plus a final Prometheus text file at
// PATH.prom.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "lira/core/policy.h"
#include "lira/sim/experiment.h"
#include "lira/sim/simulation.h"
#include "lira/sim/world.h"
#include "lira/telemetry/flight_recorder.h"
#include "lira/telemetry/telemetry.h"
#include "lira/telemetry/trace.h"

namespace {

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--policy NAME] [--z Z] [--l L] [--fairness D]\n"
      "          [--nodes N] [--distribution NAME] [--mobility walk|trips]\n"
      "          [--auto-throttle] [--capacity-fraction C] [--history]\n"
      "          [--seed S] [--telemetry PATH] [--telemetry-stride K]\n"
      "          [--trace PATH] [--flight PATH]\n"
      "          [--health PATH] [--health-stride K]\n"
      "          [--threads N] [--shards S] [--rebalance R]\n"
      "          [--incremental | --no-incremental]\n",
      argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lira;
  std::string policy_name = "Lira";
  double z = 0.5;
  LiraConfig lira_config = DefaultLiraConfig();
  int32_t nodes = 3000;
  QueryDistribution distribution = QueryDistribution::kProportional;
  MobilityModel mobility = MobilityModel::kRandomWalk;
  bool auto_throttle = false;
  double capacity_fraction = 0.0;
  bool history = false;
  uint64_t seed = 42;
  std::string telemetry_path;
  int32_t telemetry_stride = 10;
  std::string trace_path;
  std::string flight_path;
  std::string health_path;
  int32_t health_stride = 60;
  int32_t threads = 0;
  int32_t shards = 0;
  int32_t rebalance_stride = 0;
  bool incremental = true;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        Usage(argv[0]);
      }
      return argv[++i];
    };
    if (!std::strcmp(argv[i], "--policy")) {
      policy_name = next("--policy");
    } else if (!std::strcmp(argv[i], "--z")) {
      z = std::atof(next("--z"));
    } else if (!std::strcmp(argv[i], "--l")) {
      lira_config.l = std::atoi(next("--l"));
    } else if (!std::strcmp(argv[i], "--fairness")) {
      lira_config.fairness_threshold = std::atof(next("--fairness"));
    } else if (!std::strcmp(argv[i], "--nodes")) {
      nodes = std::atoi(next("--nodes"));
    } else if (!std::strcmp(argv[i], "--distribution")) {
      const std::string name = next("--distribution");
      if (name == "Proportional") {
        distribution = QueryDistribution::kProportional;
      } else if (name == "Inverse") {
        distribution = QueryDistribution::kInverse;
      } else if (name == "Random") {
        distribution = QueryDistribution::kRandom;
      } else {
        Usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--mobility")) {
      const std::string name = next("--mobility");
      if (name == "walk") {
        mobility = MobilityModel::kRandomWalk;
      } else if (name == "trips") {
        mobility = MobilityModel::kTrips;
      } else {
        Usage(argv[0]);
      }
    } else if (!std::strcmp(argv[i], "--auto-throttle")) {
      auto_throttle = true;
    } else if (!std::strcmp(argv[i], "--capacity-fraction")) {
      capacity_fraction = std::atof(next("--capacity-fraction"));
    } else if (!std::strcmp(argv[i], "--history")) {
      history = true;
    } else if (!std::strcmp(argv[i], "--seed")) {
      seed = std::strtoull(next("--seed"), nullptr, 10);
    } else if (!std::strcmp(argv[i], "--telemetry")) {
      telemetry_path = next("--telemetry");
    } else if (!std::strcmp(argv[i], "--telemetry-stride")) {
      telemetry_stride = std::atoi(next("--telemetry-stride"));
    } else if (!std::strcmp(argv[i], "--trace")) {
      trace_path = next("--trace");
    } else if (!std::strcmp(argv[i], "--flight")) {
      flight_path = next("--flight");
    } else if (!std::strcmp(argv[i], "--health")) {
      health_path = next("--health");
    } else if (!std::strcmp(argv[i], "--health-stride")) {
      health_stride = std::atoi(next("--health-stride"));
    } else if (!std::strcmp(argv[i], "--threads")) {
      threads = std::atoi(next("--threads"));
    } else if (!std::strcmp(argv[i], "--shards")) {
      shards = std::atoi(next("--shards"));
    } else if (!std::strcmp(argv[i], "--rebalance")) {
      rebalance_stride = std::atoi(next("--rebalance"));
    } else if (!std::strcmp(argv[i], "--incremental")) {
      incremental = true;
    } else if (!std::strcmp(argv[i], "--no-incremental")) {
      incremental = false;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      Usage(argv[0]);
    }
  }

  WorldConfig world_config = DefaultWorldConfig(nodes);
  world_config.query_distribution = distribution;
  world_config.mobility = mobility;
  world_config.seed = seed;
  auto world = BuildWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "BuildWorld: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  auto policy = MakePolicy(policy_name, lira_config);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  SimulationConfig sim = DefaultSimulationConfig();
  sim.z = z;
  sim.auto_throttle = auto_throttle;
  sim.evaluate_history = history;
  sim.threads = threads;
  sim.shards = shards;
  sim.rebalance_stride = rebalance_stride;
  sim.incremental = incremental;
  if (capacity_fraction > 0.0) {
    sim.service_rate_override = capacity_fraction * world->full_update_rate;
  }

  std::unique_ptr<telemetry::FileEventSink> telemetry_file;
  std::unique_ptr<telemetry::TelemetrySink> telemetry_sink;
  if (!telemetry_path.empty()) {
    const bool csv = telemetry_path.size() >= 4 &&
                     telemetry_path.compare(telemetry_path.size() - 4, 4,
                                            ".csv") == 0;
    auto file = telemetry::FileEventSink::Open(
        telemetry_path,
        csv ? telemetry::EventFormat::kCsv : telemetry::EventFormat::kJsonl);
    if (!file.ok()) {
      std::fprintf(stderr, "%s\n", file.status().ToString().c_str());
      return 1;
    }
    telemetry_file = *std::move(file);
    telemetry_sink =
        std::make_unique<telemetry::TelemetrySink>(telemetry_file.get());
    sim.telemetry = telemetry_sink.get();
    sim.telemetry_stride = telemetry_stride;
  }

  std::unique_ptr<telemetry::TraceRecorder> trace;
  if (!trace_path.empty()) {
    // One lane per shard plus the driver lane; monolithic runs only use
    // lane 0.
    trace = std::make_unique<telemetry::TraceRecorder>(
        (shards > 0 ? shards : 0) + 1);
    sim.trace = trace.get();
  }
  std::unique_ptr<telemetry::FlightRecorder> flight;
  if (!flight_path.empty()) {
    flight = std::make_unique<telemetry::FlightRecorder>(
        256, shards > 0 ? "cluster" : "server");
    sim.flight_recorder = flight.get();
    telemetry::FlightRecorder::InstallCrashDump(flight_path);
  }
  if (!health_path.empty()) {
    if (shards < 1) {
      std::fprintf(stderr,
                   "--health requires a sharded run (--shards S >= 1)\n");
      return 2;
    }
    sim.health_path = health_path;
    sim.health_stride = health_stride;
  }

  auto result = RunSimulation(*world, **policy, sim);
  if (!result.ok()) {
    std::fprintf(stderr, "RunSimulation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("world:    %d nodes, %d queries (%s, %s mobility), full rate "
              "%.1f upd/s\n",
              world->num_nodes(), world->queries.size(),
              QueryDistributionName(distribution).data(),
              mobility == MobilityModel::kTrips ? "trip" : "random-walk",
              world->full_update_rate);
  std::printf("policy:   %s  z=%.3f%s  l=%d  fairness=%.0f m\n",
              policy_name.c_str(), result->final_z,
              auto_throttle ? " (auto)" : "", lira_config.l,
              lira_config.fairness_threshold);
  std::printf("accuracy: E^C=%.5f  E^P=%.3f m  D^C=%.5f  C^C=%.3f\n",
              result->metrics.mean_containment_error,
              result->metrics.mean_position_error,
              result->metrics.containment_error_stddev,
              result->metrics.containment_error_cov);
  std::printf("load:     sent=%lld dropped=%lld applied=%lld  "
              "update-fraction=%.3f (target %.3f)\n",
              static_cast<long long>(result->updates_sent),
              static_cast<long long>(result->updates_dropped),
              static_cast<long long>(result->updates_applied),
              result->measured_update_fraction, result->final_z);
  std::printf("plan:     %d regions, deltas [%.1f, %.1f] m, %lld builds "
              "(avg %.2f ms)\n",
              result->final_plan_regions, result->final_plan_min_delta,
              result->final_plan_max_delta,
              static_cast<long long>(result->plan_builds),
              result->mean_plan_build_seconds * 1e3);
  if (history) {
    std::printf("history:  E^C=%.5f  E^P=%.3f m  store=%.2f MB\n",
                result->historical_containment_error,
                result->historical_position_error,
                result->history_bytes / 1e6);
  }
  if (telemetry_sink != nullptr) {
    const telemetry::MetricRegistry& metrics = telemetry_sink->metrics();
    const telemetry::Histogram* build =
        metrics.FindHistogram("lira.adapt.plan_build_seconds");
    const telemetry::Histogram* stats =
        metrics.FindHistogram("lira.adapt.stats_rebuild_seconds");
    const telemetry::Counter* arrivals =
        metrics.FindCounter("lira.queue.arrivals");
    const telemetry::Counter* dropped =
        metrics.FindCounter("lira.queue.dropped");
    std::printf("telemetry: %lld events -> %s\n",
                static_cast<long long>(telemetry_sink->events_emitted()),
                telemetry_path.c_str());
    if (build != nullptr && stats != nullptr) {
      std::printf(
          "           plan-build p50=%.2f p95=%.2f p99=%.2f ms  "
          "stats-rebuild p50=%.2f ms\n",
          build->P50() * 1e3, build->P95() * 1e3, build->P99() * 1e3,
          stats->P50() * 1e3);
    }
    std::printf("           queue arrivals=%lld dropped=%lld\n",
                static_cast<long long>(
                    arrivals != nullptr ? arrivals->value() : 0),
                static_cast<long long>(
                    dropped != nullptr ? dropped->value() : 0));
  }
  if (trace != nullptr) {
    const bool jsonl = trace_path.size() >= 6 &&
                       trace_path.compare(trace_path.size() - 6, 6,
                                          ".jsonl") == 0;
    const Status written = jsonl ? trace->WriteJsonl(trace_path)
                                 : trace->WriteChromeTrace(trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "%s\n", written.ToString().c_str());
      return 1;
    }
    std::printf("trace:    %zu spans -> %s (%s)\n", trace->TotalSpans(),
                trace_path.c_str(), jsonl ? "jsonl" : "chrome trace_event");
  }
  if (flight != nullptr) {
    if (auto s = telemetry::FlightRecorder::DumpAllToFile(flight_path);
        !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("flight:   %lld samples recorded, last %zu -> %s\n",
                static_cast<long long>(flight->total_recorded()),
                flight->size(), flight_path.c_str());
  }
  if (!health_path.empty()) {
    std::printf("health:   snapshots every %d frames -> %s (+ %s.prom)\n",
                health_stride, health_path.c_str(), health_path.c_str());
  }
  return 0;
}
