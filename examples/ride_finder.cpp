// Ride-finder scenario (the paper's motivating example, Section 1): users
// run continual range queries to monitor nearby taxis while the taxi fleet
// reports positions by dead reckoning.
//
// This example drives the lower-level API directly -- CqServer,
// DeadReckoningEncoder, GridIndex -- instead of the RunSimulation harness,
// and shows THROTLOOP reacting to an under-provisioned server: the throttle
// fraction z adapts until the update load matches the service capacity,
// while the LIRA plan keeps the monitored neighborhoods accurate.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "lira/cq/evaluator.h"
#include "lira/index/grid_index.h"
#include "lira/mobility/traffic_model.h"
#include "lira/motion/dead_reckoning.h"
#include "lira/roadnet/map_generator.h"
#include "lira/server/cq_server.h"
#include "lira/sim/experiment.h"

int main() {
  using namespace lira;
  // A 10 km x 10 km city with three dense districts, 2000 taxis.
  MapGeneratorConfig map_config;
  map_config.world_side = 10000.0;
  map_config.num_towns = 3;
  map_config.seed = 2026;
  auto map = GenerateMap(map_config);
  if (!map.ok()) {
    std::fprintf(stderr, "map: %s\n", map.status().ToString().c_str());
    return 1;
  }
  TrafficModelConfig traffic;
  traffic.num_vehicles = 2000;
  traffic.seed = 7;
  auto taxis = TrafficModel::Create(map->network, traffic);
  if (!taxis.ok()) {
    return 1;
  }

  // 20 riders monitor 800 m neighborhoods around themselves; riders stand
  // where taxis are dense (Proportional-like placement by hand).
  QueryRegistry queries;
  {
    Rng rng(99);
    std::vector<PositionSample> snapshot = taxis->SampleAll();
    for (int rider = 0; rider < 20; ++rider) {
      const Point at =
          snapshot[rng.UniformInt(snapshot.size())].position;
      Point center = at;
      center.x = std::clamp(center.x, 400.0, 9600.0);
      center.y = std::clamp(center.y, 400.0, 9600.0);
      queries.Add(Rect::CenteredAt(center, 800.0));
    }
  }

  // Calibrate f on a short rehearsal trace.
  auto rehearsal_model = TrafficModel::Create(map->network, traffic);
  auto rehearsal = Trace::Record(*rehearsal_model, 180, 1.0);
  auto reduction = CalibrateReduction(*rehearsal, CalibrationConfig{});
  if (!reduction.ok()) {
    return 1;
  }
  auto full_rate = MeasureUpdateRate(*rehearsal, reduction->delta_min());

  // The dispatch server can only process 40% of the full update load.
  const LiraPolicy policy(DefaultLiraConfig());
  CqServerConfig server_config;
  server_config.num_nodes = taxis->NumVehicles();
  server_config.world = map->world;
  server_config.alpha = 128;
  server_config.service_rate = 0.4 * *full_rate;
  server_config.adaptation_period = 20.0;
  server_config.auto_throttle = true;
  auto server =
      CqServer::Create(server_config, &policy, &*reduction, &queries);
  if (!server.ok()) {
    std::fprintf(stderr, "server: %s\n", server.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "ride finder: %d taxis, %d riders, full load %.0f upd/s, server "
      "capacity %.0f upd/s (40%%)\n\n",
      taxis->NumVehicles(), queries.size(), *full_rate,
      server_config.service_rate);
  std::printf("%-8s%-8s%-10s%-12s%-14s%s\n", "t (s)", "z", "queue",
              "regions", "Delta range", "taxis near rider 0");

  DeadReckoningEncoder encoder(taxis->NumVehicles());
  auto believed = GridIndex::Create(map->world, 64, taxis->NumVehicles());
  for (int t = 1; t <= 240; ++t) {
    taxis->Tick(1.0);
    std::vector<ModelUpdate> batch;
    for (NodeId id = 0; id < taxis->NumVehicles(); ++id) {
      const PositionSample sample = taxis->Sample(id);
      auto update =
          encoder.Observe(sample, server->plan().DeltaAt(sample.position));
      if (update.has_value()) {
        batch.push_back(*update);
      }
    }
    server->Receive(std::move(batch));
    if (!server->Tick(1.0).ok()) {
      return 1;
    }
    if (t % 20 == 0) {
      for (NodeId id = 0; id < taxis->NumVehicles(); ++id) {
        const auto p = server->tracker().PredictAt(id, server->time());
        if (p.has_value()) {
          believed->Update(id, *p);
        }
      }
      const auto nearby =
          believed->RangeQuery(queries.Get(0).range);
      std::printf("%-8d%-8.3f%-10zu%-12d[%.0f, %.0f] m  %zu\n", t,
                  server->z(), server->queue().size(),
                  server->plan().NumRegions(), server->plan().MinDelta(),
                  server->plan().MaxDelta(), nearby.size());
    }
  }
  std::printf(
      "\nfinal: z=%.3f, %lld updates applied, %lld dropped at the queue, "
      "%lld plan rebuilds (avg %.2f ms)\n",
      server->z(), static_cast<long long>(server->updates_applied()),
      static_cast<long long>(server->queue().total_dropped()),
      static_cast<long long>(server->plan_builds()),
      server->plan_builds() > 0
          ? 1e3 * server->total_plan_build_seconds() / server->plan_builds()
          : 0.0);
  return 0;
}
