// Quickstart: build a world, run LIRA against the Uniform-Delta baseline at
// one throttle fraction, and print the accuracy metrics.
//
// This is the smallest end-to-end use of the public API:
//   BuildWorld -> LiraPolicy -> RunSimulation -> ErrorMetrics.

#include <cstdio>

#include "lira/core/policy.h"
#include "lira/sim/experiment.h"
#include "lira/sim/simulation.h"
#include "lira/sim/world.h"

int main() {
  // A small world: ~196 km^2 synthetic road map, 1500 cars, 10-minute
  // trace, 15 range CQs following the node distribution.
  lira::WorldConfig world_config = lira::DefaultWorldConfig(/*num_nodes=*/1500);
  world_config.trace_frames = 420;
  auto world = lira::BuildWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "BuildWorld failed: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }
  std::printf("world: %d nodes, %d queries, full update rate %.1f upd/s\n",
              world->num_nodes(), world->queries.size(),
              world->full_update_rate);

  lira::SimulationConfig sim = lira::DefaultSimulationConfig();
  sim.z = 0.5;  // keep half of the full update load
  sim.warmup_frames = 120;

  const lira::LiraConfig lira_config = lira::DefaultLiraConfig();
  const lira::LiraPolicy lira_policy(lira_config);
  const lira::UniformDeltaPolicy uniform_policy;

  for (const lira::LoadSheddingPolicy* policy :
       {static_cast<const lira::LoadSheddingPolicy*>(&lira_policy),
        static_cast<const lira::LoadSheddingPolicy*>(&uniform_policy)}) {
    auto result = lira::RunSimulation(*world, *policy, sim);
    if (!result.ok()) {
      std::fprintf(stderr, "simulation failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "%-12s  E^C=%.4f  E^P=%.2fm  sent=%lld dropped=%lld "
        "update-fraction=%.3f regions=%d deltas=[%.0f, %.0f]m "
        "plan-build=%.2fms\n",
        policy->name().data(), result->metrics.mean_containment_error,
        result->metrics.mean_position_error,
        static_cast<long long>(result->updates_sent),
        static_cast<long long>(result->updates_dropped),
        result->measured_update_fraction, result->final_plan_regions,
        result->final_plan_min_delta, result->final_plan_max_delta,
        result->mean_plan_build_seconds * 1e3);
  }
  return 0;
}
