// Partition visualizer: renders the (alpha, l)-partitioning and the update
// throttlers LIRA assigns, as ASCII art. Optional arguments:
//
//   partition_viz [l] [z]     (defaults: l = 100, z = 0.5)
//
// The throttler map uses one letter per display cell: 'a' = delta_min ...
// 'z' = delta_max, so dark-letter patches are the regions LIRA sheds
// hardest (many nodes, few queries).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "lira/core/policy.h"
#include "lira/sim/experiment.h"
#include "lira/sim/world.h"

int main(int argc, char** argv) {
  using namespace lira;
  const int32_t l = argc > 1 ? std::atoi(argv[1]) : 100;
  const double z = argc > 2 ? std::atof(argv[2]) : 0.5;
  if (l < 1 || l % 3 != 1 || z < 0.0 || z > 1.0) {
    std::fprintf(stderr,
                 "usage: %s [l] [z]   (l mod 3 == 1, z in [0,1])\n",
                 argv[0]);
    return 2;
  }

  WorldConfig config = DefaultWorldConfig(/*num_nodes=*/2000);
  config.trace_frames = 240;
  auto world = BuildWorld(config);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }

  auto stats = StatisticsGrid::Create(world->world_rect(),
                                      StatisticsGrid::RecommendedAlpha(l));
  const int32_t frame = world->trace.num_frames() - 1;
  for (NodeId id = 0; id < world->num_nodes(); ++id) {
    stats->AddNode(world->trace.Position(frame, id),
                   world->trace.Speed(frame, id));
  }
  stats->AddQueries(world->queries, world->reduction.delta_max());

  LiraConfig lira_config = DefaultLiraConfig();
  lira_config.l = l;
  const LiraPolicy policy(lira_config);
  PolicyContext ctx;
  ctx.stats = &*stats;
  ctx.reduction = &world->reduction;
  ctx.z = z;
  auto plan = policy.BuildPlan(ctx);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "LIRA plan: l=%d regions (alpha=%d), z=%.2f, throttlers in "
      "[%.1f, %.1f] m, planned InAcc=%.1f\n\n",
      plan->NumRegions(), stats->alpha(), z, plan->MinDelta(),
      plan->MaxDelta(), plan->Inaccuracy());
  std::printf("update throttler map ('a'=%.0f m ... 'z'=%.0f m; '#' marks "
              "query areas):\n",
              world->reduction.delta_min(), world->reduction.delta_max());

  constexpr int kDisplay = 52;
  const double d_min = world->reduction.delta_min();
  const double d_max = world->reduction.delta_max();
  for (int dy = kDisplay - 1; dy >= 0; --dy) {
    std::putchar(' ');
    for (int dx = 0; dx < kDisplay; ++dx) {
      const Point p{
          world->world_rect().width() * (dx + 0.5) / kDisplay,
          world->world_rect().height() * (dy + 0.5) / kDisplay};
      bool in_query = false;
      for (const RangeQuery& q : world->queries.queries()) {
        if (q.range.Contains(p)) {
          in_query = true;
          break;
        }
      }
      if (in_query) {
        std::putchar('#');
        continue;
      }
      const double delta = plan->DeltaAt(p);
      const int letter = static_cast<int>(
          std::lround(25.0 * (delta - d_min) / (d_max - d_min)));
      std::putchar(static_cast<char>('a' + std::clamp(letter, 0, 25)));
    }
    std::putchar('\n');
  }

  // Throttler histogram.
  std::printf("\nthrottler distribution over regions:\n");
  constexpr int kBins = 10;
  int counts[kBins] = {0};
  for (const SheddingRegion& region : plan->regions()) {
    const int bin = std::clamp(
        static_cast<int>(kBins * (region.delta - d_min) /
                         (d_max - d_min + 1e-9)),
        0, kBins - 1);
    ++counts[bin];
  }
  for (int b = 0; b < kBins; ++b) {
    std::printf("  [%5.1f, %5.1f) m: %3d ", d_min + b * (d_max - d_min) / kBins,
                d_min + (b + 1) * (d_max - d_min) / kBins, counts[b]);
    for (int star = 0; star < counts[b]; star += 2) {
      std::putchar('*');
    }
    std::putchar('\n');
  }
  return 0;
}
