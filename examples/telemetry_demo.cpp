// Telemetry demo: runs LIRA with THROTLOOP against an under-provisioned
// server, captures the full telemetry stream in memory, and renders the
// adaptation story as text -- the z-convergence / queue-depth timeline the
// paper's Section 3.4 describes, plus a digest of the per-stage plan-build
// spans and adaptation events.
//
//   telemetry_demo [nodes] [capacity_fraction]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lira/core/policy.h"
#include "lira/sim/experiment.h"
#include "lira/sim/simulation.h"
#include "lira/sim/world.h"
#include "lira/telemetry/telemetry.h"

namespace {

using lira::telemetry::Event;
using lira::telemetry::EventKind;

/// Mean of the samples falling into each of `columns` equal time buckets
/// (NaN-free: buckets without samples repeat the previous value).
std::vector<double> Bucketize(const std::vector<Event>& samples,
                              double t_end, int columns) {
  std::vector<double> sums(columns, 0.0);
  std::vector<int> counts(columns, 0);
  for (const Event& e : samples) {
    int bucket = static_cast<int>(e.time / t_end * columns);
    bucket = std::clamp(bucket, 0, columns - 1);
    sums[bucket] += e.value;
    ++counts[bucket];
  }
  std::vector<double> out(columns, 0.0);
  double last = samples.empty() ? 0.0 : samples.front().value;
  for (int i = 0; i < columns; ++i) {
    if (counts[i] > 0) {
      last = sums[i] / counts[i];
    }
    out[i] = last;
  }
  return out;
}

void PrintBar(const char* label, double t, double value, double scale,
              int width, const char* suffix) {
  const int filled = value <= 0.0 || scale <= 0.0
                         ? 0
                         : std::clamp(static_cast<int>(value / scale * width),
                                      0, width);
  std::string bar(static_cast<size_t>(filled), '#');
  bar.resize(static_cast<size_t>(width), ' ');
  std::printf("  %6.0fs  %s=%7.3f |%s|%s\n", t, label, value, bar.c_str(),
              suffix);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lira;
  const int32_t nodes = argc > 1 ? std::atoi(argv[1]) : 1200;
  const double capacity_fraction = argc > 2 ? std::atof(argv[2]) : 0.45;

  auto world = BuildWorld(DefaultWorldConfig(nodes));
  if (!world.ok()) {
    std::fprintf(stderr, "BuildWorld: %s\n",
                 world.status().ToString().c_str());
    return 1;
  }

  LiraPolicy policy(DefaultLiraConfig());
  SimulationConfig sim = DefaultSimulationConfig();
  sim.auto_throttle = true;
  sim.service_rate_override = capacity_fraction * world->full_update_rate;

  telemetry::MemoryEventSink events;
  telemetry::TelemetrySink sink(&events);
  sim.telemetry = &sink;
  sim.telemetry_stride = 5;

  auto result = RunSimulation(*world, policy, sim);
  if (!result.ok()) {
    std::fprintf(stderr, "RunSimulation: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const auto z_samples = events.Select(EventKind::kGauge, "lira.throtloop.z");
  const auto depth_samples =
      events.Select(EventKind::kGauge, "lira.queue.depth");
  const double t_end = z_samples.empty() ? 1.0 : z_samples.back().time;

  std::printf(
      "THROTLOOP convergence: %d nodes, capacity = %.0f%% of full load "
      "(mu = %.0f upd/s)\n\n",
      world->num_nodes(), capacity_fraction * 100.0,
      sim.service_rate_override);

  constexpr int kRows = 18;
  constexpr int kBarWidth = 30;
  const auto z_rows = Bucketize(z_samples, t_end, kRows);
  const auto depth_rows = Bucketize(depth_samples, t_end, kRows);
  const double depth_scale = std::max(
      1.0, *std::max_element(depth_rows.begin(), depth_rows.end()));
  std::printf("  throttle fraction z (|...| spans [0, 1])\n");
  for (int i = 0; i < kRows; ++i) {
    PrintBar("z", (i + 0.5) * t_end / kRows, z_rows[i], 1.0, kBarWidth, "");
  }
  std::printf("\n  server input-queue depth (|...| spans [0, %.0f])\n",
              depth_scale);
  for (int i = 0; i < kRows; ++i) {
    PrintBar("depth", (i + 0.5) * t_end / kRows, depth_rows[i], depth_scale,
             kBarWidth, "");
  }

  const telemetry::MetricRegistry& metrics = sink.metrics();
  const telemetry::Histogram* total =
      metrics.FindHistogram("lira.adapt.total_seconds");
  const telemetry::Histogram* reduce =
      metrics.FindHistogram("lira.adapt.grid_reduce_seconds");
  const telemetry::Histogram* greedy =
      metrics.FindHistogram("lira.adapt.greedy_increment_seconds");
  const telemetry::Counter* splits =
      metrics.FindCounter("lira.gridreduce.drilldowns");
  std::printf("\nadaptation loop (%zu adaptations):\n",
              events.Select(EventKind::kPlanRebuilt).size());
  if (total != nullptr) {
    std::printf("  total        p50=%.2f ms  p95=%.2f ms  max=%.2f ms\n",
                total->P50() * 1e3, total->P95() * 1e3, total->max() * 1e3);
  }
  if (reduce != nullptr && greedy != nullptr) {
    std::printf("  GRIDREDUCE   p50=%.2f ms   GREEDYINCREMENT p50=%.2f ms\n",
                reduce->P50() * 1e3, greedy->P50() * 1e3);
  }
  if (splits != nullptr) {
    std::printf("  drill-downs  %lld total\n",
                static_cast<long long>(splits->value()));
  }
  std::printf(
      "  z changes    %zu events; final z=%.3f (measured update fraction "
      "%.3f)\n",
      events.Select(EventKind::kZChanged).size(), result->final_z,
      result->measured_update_fraction);
  std::printf("  queue        %zu overflow events, %lld updates dropped\n",
              events.Select(EventKind::kQueueOverflow).size(),
              static_cast<long long>(result->updates_dropped));
  std::printf("\n%lld telemetry events captured in memory\n",
              static_cast<long long>(sink.events_emitted()));
  return 0;
}
