// Moving continual queries: "show me the taxis near *me*" while the rider
// is also driving.
//
// The paper evaluates static range CQs but notes LIRA "is not tied to any
// specific query processing technique": the shedder only consumes the
// statistics grid. This example re-centers each query on its (moving) owner
// and re-installs the workload at every adaptation period via
// CqServer::InstallQueries -- the shedding regions follow the riders around
// the map.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "lira/motion/dead_reckoning.h"
#include "lira/server/cq_server.h"
#include "lira/sim/experiment.h"
#include "lira/sim/world.h"

int main() {
  using namespace lira;
  WorldConfig world_config = DefaultWorldConfig(/*num_nodes=*/1500);
  world_config.trace_frames = 420;
  world_config.query_node_ratio = 0.0;  // queries are built by hand below
  auto world = BuildWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }

  // The first 12 nodes are "riders": each runs an 800 m query around
  // itself.
  constexpr int kRiders = 12;
  constexpr double kQuerySide = 800.0;
  auto workload_at = [&](int32_t frame) {
    QueryRegistry registry;
    for (NodeId rider = 0; rider < kRiders; ++rider) {
      Point center = world->trace.Position(frame, rider);
      center.x = std::clamp(center.x, kQuerySide / 2,
                            world->world_rect().max_x - kQuerySide / 2);
      center.y = std::clamp(center.y, kQuerySide / 2,
                            world->world_rect().max_y - kQuerySide / 2);
      registry.Add(Rect::CenteredAt(center, kQuerySide));
    }
    return registry;
  };

  QueryRegistry current = workload_at(0);
  const LiraPolicy policy(DefaultLiraConfig());
  CqServerConfig config;
  config.num_nodes = world->num_nodes();
  config.world = world->world_rect();
  config.alpha = 128;
  config.service_rate = 4.0 * world->full_update_rate;
  config.adaptation_period = 30.0;
  config.fixed_z = 0.5;
  auto server =
      CqServer::Create(config, &policy, &world->reduction, &current);
  if (!server.ok()) {
    std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
    return 1;
  }

  std::printf(
      "moving queries: %d riders with %0.f m self-centered CQs over %d "
      "taxis, z=0.5\n\n",
      kRiders, kQuerySide, world->num_nodes() - kRiders);
  std::printf("%-8s%-10s%-16s%-18s%s\n", "t (s)", "plan", "rider-0 delta",
              "taxis near r0", "min/max Delta");

  DeadReckoningEncoder encoder(world->num_nodes());
  QueryRegistry next;  // must outlive its installation at the server
  for (int32_t frame = 0; frame < world->trace.num_frames(); ++frame) {
    // Refresh the workload right before each adaptation fires so the new
    // plan sees current rider positions.
    const double t_next_adapt =
        (server->plan_builds() + 1) * config.adaptation_period;
    if (world->trace.TimeOf(frame) + world->trace.dt() >= t_next_adapt &&
        world->trace.TimeOf(frame) < t_next_adapt) {
      next = workload_at(frame);
      if (!server->InstallQueries(&next).ok()) {
        return 1;
      }
    }
    std::vector<ModelUpdate> batch;
    for (NodeId id = 0; id < world->num_nodes(); ++id) {
      const PositionSample sample = world->trace.Sample(frame, id);
      auto update =
          encoder.Observe(sample, server->plan().DeltaAt(sample.position));
      if (update.has_value()) {
        batch.push_back(*update);
      }
    }
    server->Receive(std::move(batch));
    if (!server->Tick(world->trace.dt()).ok()) {
      return 1;
    }
    if ((frame + 1) % 60 == 0) {
      const Point rider0 = world->trace.Position(frame, 0);
      auto nearby = server->AnswerRange(
          Rect::CenteredAt(rider0, kQuerySide), server->time());
      std::printf("%-8.0f#%-9lld%-16.1f%-18zu[%.0f, %.0f] m\n",
                  server->time(),
                  static_cast<long long>(server->plan_builds()),
                  server->plan().DeltaAt(rider0),
                  nearby.ok() ? nearby->size() : 0,
                  server->plan().MinDelta(), server->plan().MaxDelta());
    }
  }
  std::printf(
      "\n(rider-0's local throttler stays near delta_min wherever the rider "
      "drives -- the shedding regions follow the moving queries)\n");
  return 0;
}
