// Fleet monitoring with a bandwidth budget: the paper's second deployment
// mode (Section 2.1) where the throttle fraction is set manually because
// the *wireless uplink*, not the server, is the bottleneck.
//
// A logistics operator tracks its fleet with geofence CQs around three
// depots while paying for only half the raw position-update traffic
// (z = 0.5). The example compares LIRA against the Uniform-Delta fallback
// on the same recorded day, then prices the plan dissemination through the
// base-station layer (Table 3 machinery).

#include <cstdio>
#include <vector>

#include "lira/basestation/base_station.h"
#include "lira/basestation/broadcast.h"
#include "lira/core/policy.h"
#include "lira/sim/experiment.h"
#include "lira/sim/simulation.h"
#include "lira/sim/world.h"

int main() {
  using namespace lira;
  WorldConfig world_config = DefaultWorldConfig(/*num_nodes=*/2500);
  world_config.trace_frames = 480;
  world_config.query_node_ratio = 0.008;  // 20 depot geofences
  world_config.query_side_length = 1500.0;
  world_config.seed = 77;
  auto world = BuildWorld(world_config);
  if (!world.ok()) {
    std::fprintf(stderr, "%s\n", world.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "fleet: %d vehicles, %d geofence CQs, raw uplink %.0f upd/s, paid "
      "budget z=0.5\n\n",
      world->num_nodes(), world->queries.size(), world->full_update_rate);

  SimulationConfig sim = DefaultSimulationConfig();
  sim.z = 0.5;
  const LiraPolicy lira(DefaultLiraConfig());
  const UniformDeltaPolicy uniform;

  std::printf("%-14s%-12s%-12s%-14s%-12s\n", "policy", "E^C_rr",
              "E^P_rr (m)", "upd fraction", "updates");
  for (const LoadSheddingPolicy* policy :
       {static_cast<const LoadSheddingPolicy*>(&lira),
        static_cast<const LoadSheddingPolicy*>(&uniform)}) {
    auto result = RunSimulation(*world, *policy, sim);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-14s%-12.5f%-12.3f%-14.3f%lld\n", policy->name().data(),
                result->metrics.mean_containment_error,
                result->metrics.mean_position_error,
                result->measured_update_fraction,
                static_cast<long long>(result->updates_sent));
  }

  // Price the dissemination of the LIRA plan over the cell network.
  auto stats = StatisticsGrid::Create(world->world_rect(), 128);
  const int32_t frame = world->trace.num_frames() / 2;
  std::vector<Point> positions;
  for (NodeId id = 0; id < world->num_nodes(); ++id) {
    const Point p = world->trace.Position(frame, id);
    stats->AddNode(p, world->trace.Speed(frame, id));
    positions.push_back(p);
  }
  stats->AddQueries(world->queries);
  PolicyContext ctx;
  ctx.stats = &*stats;
  ctx.reduction = &world->reduction;
  ctx.z = 0.5;
  auto plan = lira.BuildPlan(ctx);
  if (!plan.ok()) {
    return 1;
  }
  DensityPlacementConfig placement;
  placement.target_nodes_per_station = 120.0;
  auto stations = DensityAwarePlacement(*stats, placement);
  if (!stations.ok()) {
    return 1;
  }
  const double regions_per_node =
      MeanRegionsPerNode(*plan, *stations, positions);
  std::printf(
      "\nplan dissemination: %d base stations, %.1f regions per vehicle on "
      "average -> %.0f-byte broadcast payload (single UDP packet budget "
      "1472 B: %s)\n",
      static_cast<int32_t>(stations->size()), regions_per_node,
      regions_per_node * kBytesPerRegion,
      regions_per_node * kBytesPerRegion <= 1472.0 ? "OK" : "exceeded");
  return 0;
}
